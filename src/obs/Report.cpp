//===- obs/Report.cpp -----------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Report.h"

#include <algorithm>
#include <cstdio>
#include <istream>

using namespace mgc;
using namespace mgc::obs;

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

struct Cursor {
  const std::string &S;
  size_t I = 0;

  bool done() const { return I >= S.size(); }
  char peek() const { return S[I]; }
  bool eat(char C) {
    if (done() || S[I] != C)
      return false;
    ++I;
    return true;
  }
};

bool parseString(Cursor &C, std::string &Out, std::string &Err) {
  if (!C.eat('"')) {
    Err = "expected '\"'";
    return false;
  }
  Out.clear();
  while (!C.done() && C.peek() != '"') {
    char Ch = C.S[C.I++];
    if (Ch != '\\') {
      Out += Ch;
      continue;
    }
    if (C.done()) {
      Err = "dangling escape";
      return false;
    }
    char E = C.S[C.I++];
    switch (E) {
    case '"':
      Out += '"';
      break;
    case '\\':
      Out += '\\';
      break;
    case '/':
      Out += '/';
      break;
    case 'n':
      Out += '\n';
      break;
    case 't':
      Out += '\t';
      break;
    case 'r':
      Out += '\r';
      break;
    case 'u': {
      if (C.I + 4 > C.S.size()) {
        Err = "truncated \\u escape";
        return false;
      }
      unsigned V = 0;
      for (int K = 0; K != 4; ++K) {
        char H = C.S[C.I++];
        V <<= 4;
        if (H >= '0' && H <= '9')
          V |= static_cast<unsigned>(H - '0');
        else if (H >= 'a' && H <= 'f')
          V |= static_cast<unsigned>(H - 'a' + 10);
        else if (H >= 'A' && H <= 'F')
          V |= static_cast<unsigned>(H - 'A' + 10);
        else {
          Err = "bad \\u digit";
          return false;
        }
      }
      // The tracer only escapes control characters; anything else is kept
      // as a replacement byte rather than attempting UTF-8 encoding.
      Out += V < 0x80 ? static_cast<char>(V) : '?';
      break;
    }
    default:
      Err = std::string("unknown escape '\\") + E + "'";
      return false;
    }
  }
  if (!C.eat('"')) {
    Err = "unterminated string";
    return false;
  }
  return true;
}

bool parseInt(Cursor &C, int64_t &Out, std::string &Err) {
  size_t Start = C.I;
  if (!C.done() && C.peek() == '-')
    ++C.I;
  while (!C.done() && C.peek() >= '0' && C.peek() <= '9')
    ++C.I;
  if (C.I == Start || (C.S[Start] == '-' && C.I == Start + 1)) {
    Err = "expected integer";
    return false;
  }
  Out = 0;
  bool Neg = C.S[Start] == '-';
  for (size_t K = Start + (Neg ? 1 : 0); K != C.I; ++K)
    Out = Out * 10 + (C.S[K] - '0');
  if (Neg)
    Out = -Out;
  return true;
}

} // namespace

bool obs::parseTraceLine(const std::string &Line, TraceRecord &Rec,
                         std::string &Err) {
  Rec = TraceRecord();
  Cursor C{Line};
  if (!C.eat('{')) {
    Err = "expected '{'";
    return false;
  }
  bool First = true;
  while (!C.eat('}')) {
    if (!First && !C.eat(',')) {
      Err = "expected ',' between fields";
      return false;
    }
    First = false;
    std::string Key;
    if (!parseString(C, Key, Err))
      return false;
    if (!C.eat(':')) {
      Err = "expected ':' after key";
      return false;
    }
    if (!C.done() && C.peek() == '"') {
      std::string V;
      if (!parseString(C, V, Err))
        return false;
      if (Key == "type")
        Rec.Type = V;
      else
        Rec.Strs[Key] = V;
    } else {
      int64_t V;
      if (!parseInt(C, V, Err))
        return false;
      Rec.Ints[Key] = V;
    }
  }
  if (!C.done()) {
    Err = "trailing characters after '}'";
    return false;
  }
  if (Rec.Type.empty()) {
    Err = "record has no \"type\" field";
    return false;
  }
  return true;
}

bool obs::readTrace(std::istream &In, TraceReport &R, std::string &Err) {
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    TraceRecord Rec;
    std::string E;
    if (!parseTraceLine(Line, Rec, E)) {
      Err = "line " + std::to_string(LineNo) + ": " + E;
      return false;
    }
    ++R.LinesRead;
    if (Rec.Type == "meta") {
      R.Program = Rec.getStr("program");
      R.GenGc = Rec.getInt("gen_gc") != 0;
      R.SiteTableBytes = static_cast<uint64_t>(Rec.getInt("site_table_bytes"));
      R.Sites.resize(static_cast<size_t>(Rec.getInt("sites")));
      for (size_t I = 0; I != R.Sites.size(); ++I)
        R.Sites[I].Id = static_cast<uint32_t>(I);
    } else if (Rec.Type == "site") {
      size_t Id = static_cast<size_t>(Rec.getInt("id"));
      if (Id >= R.Sites.size()) {
        Err = "line " + std::to_string(LineNo) + ": site id out of range";
        return false;
      }
      TraceReport::Site &S = R.Sites[Id];
      S.Func = Rec.getStr("func");
      S.Line = static_cast<uint32_t>(Rec.getInt("line"));
      S.Col = static_cast<uint32_t>(Rec.getInt("col"));
      S.Desc = static_cast<uint32_t>(Rec.getInt("desc"));
    } else if (Rec.Type == "gc") {
      GcEvent Ev;
      Ev.Seq = static_cast<uint64_t>(Rec.getInt("seq"));
      Ev.Minor = Rec.getStr("kind") == "minor";
      int64_t Trig = Rec.getInt("trigger_site", -1);
      Ev.TriggerSite = Trig < 0 ? NoSite : static_cast<uint32_t>(Trig);
      Ev.Phases.Rendezvous = static_cast<uint64_t>(Rec.getInt("rendezvous_ns"));
      Ev.Phases.StackTrace =
          static_cast<uint64_t>(Rec.getInt("stack_trace_ns"));
      Ev.Phases.Underive = static_cast<uint64_t>(Rec.getInt("underive_ns"));
      Ev.Phases.Copy = static_cast<uint64_t>(Rec.getInt("copy_ns"));
      Ev.Phases.RemsetRebuild = static_cast<uint64_t>(Rec.getInt("remset_ns"));
      Ev.Phases.Rederive = static_cast<uint64_t>(Rec.getInt("rederive_ns"));
      Ev.TotalNanos = static_cast<uint64_t>(Rec.getInt("total_ns"));
      Ev.HeapBeforeBytes = static_cast<uint64_t>(Rec.getInt("heap_before"));
      Ev.HeapAfterBytes = static_cast<uint64_t>(Rec.getInt("heap_after"));
      Ev.FramesTraced = static_cast<uint64_t>(Rec.getInt("frames"));
      Ev.RootsTraced = static_cast<uint64_t>(Rec.getInt("roots"));
      Ev.ObjectsCopied = static_cast<uint64_t>(Rec.getInt("objects_copied"));
      Ev.BytesCopied = static_cast<uint64_t>(Rec.getInt("bytes_copied"));
      Ev.ObjectsPromoted =
          static_cast<uint64_t>(Rec.getInt("objects_promoted"));
      Ev.BytesPromoted = static_cast<uint64_t>(Rec.getInt("bytes_promoted"));
      Ev.DerivedAdjusted =
          static_cast<uint64_t>(Rec.getInt("derived_adjusted"));
      Ev.RendezvousSteps =
          static_cast<uint64_t>(Rec.getInt("rendezvous_steps"));
      Ev.CacheHits = static_cast<uint64_t>(Rec.getInt("cache_hits"));
      Ev.CacheMisses = static_cast<uint64_t>(Rec.getInt("cache_misses"));
      // Parallel-collector fields (absent in pre---gc-threads traces;
      // default to the serial shape).
      Ev.Workers = static_cast<uint32_t>(Rec.getInt("workers", 1));
      if (Ev.Workers > MaxGcWorkers)
        Ev.Workers = MaxGcWorkers;
      for (uint32_t W = 0; W != Ev.Workers; ++W) {
        std::string Key = "w" + std::to_string(W);
        Ev.WorkerTraceNanos[W] =
            static_cast<uint64_t>(Rec.getInt(Key + "_trace_ns"));
        Ev.WorkerCopyNanos[W] =
            static_cast<uint64_t>(Rec.getInt(Key + "_copy_ns"));
      }
      R.Events.push_back(Ev);
    } else if (Rec.Type == "req") {
      TraceReport::Request Q;
      Q.Seq = static_cast<uint64_t>(Rec.getInt("seq"));
      Q.Instrs = static_cast<uint64_t>(Rec.getInt("instrs"));
      Q.GcNanos = static_cast<uint64_t>(Rec.getInt("gc_ns"));
      Q.Collections = static_cast<uint64_t>(Rec.getInt("collections"));
      R.Requests.push_back(Q);
    } else if (Rec.Type == "site_stats") {
      size_t Id = static_cast<size_t>(Rec.getInt("id"));
      if (Id >= R.Sites.size()) {
        Err = "line " + std::to_string(LineNo) + ": site_stats id out of range";
        return false;
      }
      TraceReport::Site &S = R.Sites[Id];
      S.Count = static_cast<uint64_t>(Rec.getInt("count"));
      S.Bytes = static_cast<uint64_t>(Rec.getInt("bytes"));
      S.Survived = static_cast<uint64_t>(Rec.getInt("survived"));
      S.SurvivedBytes = static_cast<uint64_t>(Rec.getInt("survived_bytes"));
    } else if (Rec.Type == "site_live") {
      int64_t Id = Rec.getInt("id", -1);
      if (Id >= 0 && static_cast<size_t>(Id) >= R.Sites.size()) {
        Err = "line " + std::to_string(LineNo) + ": site_live id out of range";
        return false;
      }
      TraceReport::LiveSite L;
      L.Id = Id;
      L.Objects = static_cast<uint64_t>(Rec.getInt("objects"));
      L.Bytes = static_cast<uint64_t>(Rec.getInt("bytes"));
      R.LiveSites.push_back(L);
    } else if (Rec.Type == "age_hist") {
      TraceReport::AgeBucket B;
      B.Age = static_cast<uint32_t>(Rec.getInt("age"));
      B.Objects = static_cast<uint64_t>(Rec.getInt("objects"));
      B.Bytes = static_cast<uint64_t>(Rec.getInt("bytes"));
      R.AgeHist.push_back(B);
    } else if (Rec.Type == "leak") {
      size_t Id = static_cast<size_t>(Rec.getInt("site"));
      if (Id >= R.Sites.size()) {
        Err = "line " + std::to_string(LineNo) + ": leak site out of range";
        return false;
      }
      TraceReport::Leak L;
      L.Site = static_cast<uint32_t>(Id);
      L.SlopeBytes = Rec.getInt("slope_bytes");
      L.LiveBytes = static_cast<uint64_t>(Rec.getInt("live_bytes"));
      L.FirstFlagged = static_cast<uint64_t>(Rec.getInt("first_flagged"));
      L.Window = static_cast<uint32_t>(Rec.getInt("window"));
      R.Leaks.push_back(L);
    } else if (Rec.Type == "prof_stack") {
      TraceReport::HotStack H;
      H.Rank = static_cast<uint64_t>(Rec.getInt("rank"));
      H.Samples = static_cast<uint64_t>(Rec.getInt("samples"));
      H.Weight = static_cast<uint64_t>(Rec.getInt("weight"));
      H.Stack = Rec.getStr("stack");
      R.HotStacks.push_back(H);
    } else if (Rec.Type == "run") {
      R.HasRun = true;
      R.RunOk = Rec.getStr("exit") == "ok";
      R.RunError = Rec.getStr("error");
      R.Run = Rec;
    } else {
      Err = "line " + std::to_string(LineNo) + ": unknown record type \"" +
            Rec.Type + "\"";
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

std::string fmtNanos(uint64_t Ns) {
  char Buf[64];
  if (Ns >= 1'000'000)
    std::snprintf(Buf, sizeof(Buf), "%.2f ms",
                  static_cast<double>(Ns) / 1e6);
  else if (Ns >= 1'000)
    std::snprintf(Buf, sizeof(Buf), "%.2f us",
                  static_cast<double>(Ns) / 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%llu ns",
                  static_cast<unsigned long long>(Ns));
  return Buf;
}

std::string fmtBytes(uint64_t B) {
  char Buf[64];
  if (B >= 1u << 20)
    std::snprintf(Buf, sizeof(Buf), "%.2f MiB",
                  static_cast<double>(B) / (1u << 20));
  else if (B >= 1u << 10)
    std::snprintf(Buf, sizeof(Buf), "%.2f KiB",
                  static_cast<double>(B) / (1u << 10));
  else
    std::snprintf(Buf, sizeof(Buf), "%llu B",
                  static_cast<unsigned long long>(B));
  return Buf;
}

struct Pcts {
  uint64_t P50 = 0, P95 = 0, Max = 0;
};

Pcts pcts(std::vector<uint64_t> V) {
  Pcts R;
  if (V.empty())
    return R;
  std::sort(V.begin(), V.end());
  auto At = [&](double P) {
    size_t I =
        static_cast<size_t>(P * static_cast<double>(V.size() - 1) + 0.5);
    return V[std::min(I, V.size() - 1)];
  };
  R.P50 = At(0.50);
  R.P95 = At(0.95);
  R.Max = V.back();
  return R;
}

void line(std::string &Out, const char *Name, const Pcts &P, uint64_t Total) {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "  %-12s p50 %12s   p95 %12s   max %12s   total %12s\n",
                Name, fmtNanos(P.P50).c_str(), fmtNanos(P.P95).c_str(),
                fmtNanos(P.Max).c_str(), fmtNanos(Total).c_str());
  Out += Buf;
}

std::string siteLabel(const TraceReport::Site &S) {
  std::string L = S.Func;
  L += ':';
  L += std::to_string(S.Line);
  if (S.Col)
    L += ':' + std::to_string(S.Col);
  return L;
}

} // namespace

std::string obs::renderReport(const TraceReport &R, size_t TopN) {
  std::string Out;
  char Buf[256];

  Out += "=== mgc trace report: " + R.Program + " ===\n";
  std::snprintf(Buf, sizeof(Buf),
                "mode: %s   collections: %zu   sites: %zu   "
                "site table: %llu bytes\n",
                R.GenGc ? "generational" : "two-space", R.Events.size(),
                R.Sites.size(),
                static_cast<unsigned long long>(R.SiteTableBytes));
  Out += Buf;
  if (R.HasRun && !R.RunOk)
    Out += "RUN FAILED: " + R.RunError + " (trace is partial)\n";
  // Ring overflow means the pause/volume sections below silently miss the
  // oldest collections — say so up front, not buried in the run record.
  if (uint64_t Dropped =
          static_cast<uint64_t>(R.Run.getInt("events_dropped_from_ring"))) {
    std::snprintf(Buf, sizeof(Buf),
                  "WARNING: %llu gc events dropped from the ring buffer; "
                  "pause/volume sections cover only the last %zu "
                  "collections\n",
                  static_cast<unsigned long long>(Dropped), R.Events.size());
    Out += Buf;
  }

  // A run that never collected has no pause/volume/survival material: say
  // so instead of rendering a report of empty sections (and keep the
  // percentile math away from zero-length inputs).
  if (R.Events.empty())
    Out += "no collections recorded\n";

  // --- Pause breakdown per collection kind and phase.
  auto Section = [&](const char *Title, bool Minor) {
    std::vector<uint64_t> Total, Rend, Trace, Und, Copy, Rem, Red;
    uint64_t SumTotal = 0, SumRend = 0, SumTrace = 0, SumUnd = 0,
             SumCopy = 0, SumRem = 0, SumRed = 0;
    for (const GcEvent &E : R.Events) {
      if (E.Minor != Minor)
        continue;
      Total.push_back(E.TotalNanos);
      Rend.push_back(E.Phases.Rendezvous);
      Trace.push_back(E.Phases.StackTrace);
      Und.push_back(E.Phases.Underive);
      Copy.push_back(E.Phases.Copy);
      Rem.push_back(E.Phases.RemsetRebuild);
      Red.push_back(E.Phases.Rederive);
      SumTotal += E.TotalNanos;
      SumRend += E.Phases.Rendezvous;
      SumTrace += E.Phases.StackTrace;
      SumUnd += E.Phases.Underive;
      SumCopy += E.Phases.Copy;
      SumRem += E.Phases.RemsetRebuild;
      SumRed += E.Phases.Rederive;
    }
    if (Total.empty())
      return;
    std::snprintf(Buf, sizeof(Buf), "\n-- %s pauses (%zu collections) --\n",
                  Title, Total.size());
    Out += Buf;
    line(Out, "total", pcts(Total), SumTotal);
    line(Out, "rendezvous", pcts(Rend), SumRend);
    line(Out, "stack-trace", pcts(Trace), SumTrace);
    line(Out, "underive", pcts(Und), SumUnd);
    line(Out, "copy", pcts(Copy), SumCopy);
    if (Minor)
      line(Out, "remset", pcts(Rem), SumRem);
    line(Out, "rederive", pcts(Red), SumRed);
  };
  Section("minor", true);
  Section("full", false);

  // --- Copy/promotion volume and decode cache efficiency.
  uint64_t Frames = 0, Hits = 0, Misses = 0, BytesCopied = 0,
           BytesPromoted = 0, ObjectsCopied = 0;
  for (const GcEvent &E : R.Events) {
    Frames += E.FramesTraced;
    Hits += E.CacheHits;
    Misses += E.CacheMisses;
    BytesCopied += E.BytesCopied;
    BytesPromoted += E.BytesPromoted;
    ObjectsCopied += E.ObjectsCopied;
  }
  if (!R.Events.empty()) {
    Out += "\n-- volume --\n";
    std::snprintf(Buf, sizeof(Buf),
                  "  copied %llu objects / %s; promoted %s; "
                  "%llu frames traced\n",
                  static_cast<unsigned long long>(ObjectsCopied),
                  fmtBytes(BytesCopied).c_str(),
                  fmtBytes(BytesPromoted).c_str(),
                  static_cast<unsigned long long>(Frames));
    Out += Buf;
    uint64_t Decodes = Hits + Misses;
    if (Decodes) {
      std::snprintf(Buf, sizeof(Buf),
                    "  decode cache: %llu hits / %llu misses (%.1f%% hit "
                    "rate)\n",
                    static_cast<unsigned long long>(Hits),
                    static_cast<unsigned long long>(Misses),
                    100.0 * static_cast<double>(Hits) /
                        static_cast<double>(Decodes));
      Out += Buf;
    }
  }

  // --- Parallel-collection load balance (events with >1 worker).
  uint32_t MaxWorkers = 0;
  for (const GcEvent &E : R.Events)
    MaxWorkers = std::max(MaxWorkers, E.Workers);
  if (MaxWorkers > 1) {
    Out += "\n-- gc workers --\n";
    for (uint32_t W = 0; W != MaxWorkers && W != MaxGcWorkers; ++W) {
      uint64_t SumTrace = 0, SumCopy = 0;
      for (const GcEvent &E : R.Events)
        if (W < E.Workers) {
          SumTrace += E.WorkerTraceNanos[W];
          SumCopy += E.WorkerCopyNanos[W];
        }
      std::snprintf(Buf, sizeof(Buf),
                    "  worker %u   trace %12s   copy %12s\n", W,
                    fmtNanos(SumTrace).c_str(), fmtNanos(SumCopy).c_str());
      Out += Buf;
    }
  }

  // --- Server-workload requests (programs that call ReqDone).
  if (!R.Requests.empty()) {
    std::vector<uint64_t> Instrs;
    uint64_t GcNs = 0, Colls = 0;
    for (const TraceReport::Request &Q : R.Requests) {
      Instrs.push_back(Q.Instrs);
      GcNs += Q.GcNanos;
      Colls += Q.Collections;
    }
    Pcts P = pcts(Instrs);
    Out += "\n-- requests --\n";
    std::snprintf(Buf, sizeof(Buf),
                  "  %zu requests; instrs/req p50 %llu   p95 %llu   max "
                  "%llu\n",
                  R.Requests.size(), static_cast<unsigned long long>(P.P50),
                  static_cast<unsigned long long>(P.P95),
                  static_cast<unsigned long long>(P.Max));
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "  gc attributed to requests: %s across %llu "
                  "collections\n",
                  fmtNanos(GcNs).c_str(),
                  static_cast<unsigned long long>(Colls));
    Out += Buf;
  }

  // --- Hot stacks from the sampling profiler (runs with --profile).
  if (!R.HotStacks.empty()) {
    Out += "\n-- hot stacks (sampling profiler, by mutator weight) --\n";
    std::snprintf(Buf, sizeof(Buf), "  %4s %12s %10s  %s\n", "rank",
                  "weight", "samples", "stack");
    Out += Buf;
    size_t N = std::min(TopN, R.HotStacks.size());
    for (size_t I = 0; I != N; ++I) {
      const TraceReport::HotStack &H = R.HotStacks[I];
      std::snprintf(Buf, sizeof(Buf), "  %4llu %12llu %10llu  ",
                    static_cast<unsigned long long>(H.Rank),
                    static_cast<unsigned long long>(H.Weight),
                    static_cast<unsigned long long>(H.Samples));
      Out += Buf;
      Out += H.Stack;
      Out += '\n';
    }
  }

  // --- Top allocation sites.
  std::vector<const TraceReport::Site *> Active;
  for (const TraceReport::Site &S : R.Sites)
    if (S.Count)
      Active.push_back(&S);

  auto Table = [&](const char *Title, auto Key) {
    if (Active.empty())
      return;
    // Tie-break equal keys by site id so the table order (and with it the
    // rendered report) is identical across gc-thread counts and dispatch
    // tiers, not at the mercy of std::sort's instability.
    std::stable_sort(
        Active.begin(), Active.end(),
        [&](const TraceReport::Site *A, const TraceReport::Site *B) {
          if (Key(*A) != Key(*B))
            return Key(*A) > Key(*B);
          return A->Id < B->Id;
        });
    Out += "\n-- ";
    Out += Title;
    Out += " --\n";
    std::snprintf(Buf, sizeof(Buf), "  %-28s %12s %12s %12s %9s\n", "site",
                  "allocs", "bytes", "survived", "surv%");
    Out += Buf;
    size_t N = std::min(TopN, Active.size());
    for (size_t I = 0; I != N; ++I) {
      const TraceReport::Site &S = *Active[I];
      if (Key(S) == 0)
        break;
      double SurvPct = S.Count
                           ? 100.0 * static_cast<double>(S.Survived) /
                                 static_cast<double>(S.Count)
                           : 0.0;
      std::snprintf(Buf, sizeof(Buf), "  %-28s %12llu %12s %12llu %8.1f%%\n",
                    siteLabel(S).c_str(),
                    static_cast<unsigned long long>(S.Count),
                    fmtBytes(S.Bytes).c_str(),
                    static_cast<unsigned long long>(S.Survived), SurvPct);
      Out += Buf;
    }
  };
  Table("top sites by bytes allocated",
        [](const TraceReport::Site &S) { return S.Bytes; });
  Table("top sites by bytes surviving first collection",
        [](const TraceReport::Site &S) { return S.SurvivedBytes; });

  // --- Suspected leak sites (online growth detector).
  if (!R.Leaks.empty()) {
    Out += '\n';
    Out += renderLeaks(R, TopN);
  }

  // --- Live objects at trace finish by site (persistent attribution).
  if (!R.LiveSites.empty()) {
    std::vector<const TraceReport::LiveSite *> Live;
    for (const TraceReport::LiveSite &L : R.LiveSites)
      Live.push_back(&L);
    std::sort(Live.begin(), Live.end(),
              [](const TraceReport::LiveSite *A,
                 const TraceReport::LiveSite *B) {
                if (A->Bytes != B->Bytes)
                  return A->Bytes > B->Bytes;
                return A->Id < B->Id;
              });
    Out += "\n-- live at finish by site --\n";
    std::snprintf(Buf, sizeof(Buf), "  %-28s %12s %12s\n", "site", "objects",
                  "bytes");
    Out += Buf;
    size_t N = std::min(TopN, Live.size());
    for (size_t I = 0; I != N; ++I) {
      const TraceReport::LiveSite &L = *Live[I];
      std::string Label =
          L.Id < 0 ? "(no site)"
                   : siteLabel(R.Sites[static_cast<size_t>(L.Id)]);
      std::snprintf(Buf, sizeof(Buf), "  %-28s %12llu %12s\n", Label.c_str(),
                    static_cast<unsigned long long>(L.Objects),
                    fmtBytes(L.Bytes).c_str());
      Out += Buf;
    }
  }

  // --- Age histogram: how many collections did the live objects survive?
  if (!R.AgeHist.empty()) {
    uint64_t MaxObjects = 1;
    for (const TraceReport::AgeBucket &B : R.AgeHist)
      MaxObjects = std::max(MaxObjects, B.Objects);
    Out += "\n-- live object ages (collections survived) --\n";
    for (const TraceReport::AgeBucket &B : R.AgeHist) {
      size_t Bar = static_cast<size_t>(
          30.0 * static_cast<double>(B.Objects) /
          static_cast<double>(MaxObjects));
      std::snprintf(Buf, sizeof(Buf), "  age %3u %10llu obj %12s  %s\n",
                    B.Age, static_cast<unsigned long long>(B.Objects),
                    fmtBytes(B.Bytes).c_str(),
                    std::string(Bar, '#').c_str());
      Out += Buf;
    }
  }

  return Out;
}

std::string obs::renderLeaks(const TraceReport &R, size_t TopN) {
  if (R.Leaks.empty())
    return "no suspected leak sites\n";
  std::string Out;
  char Buf[256];
  // Records arrive pre-sorted by (slope desc, site asc) from the tracer.
  Out += "-- suspected leak sites --\n";
  std::snprintf(Buf, sizeof(Buf), "  %-28s %14s %12s %14s\n", "site",
                "slope B/gc", "live", "first flagged");
  Out += Buf;
  size_t N = std::min(TopN, R.Leaks.size());
  for (size_t I = 0; I != N; ++I) {
    const TraceReport::Leak &L = R.Leaks[I];
    std::string Label = static_cast<size_t>(L.Site) < R.Sites.size()
                            ? siteLabel(R.Sites[L.Site])
                            : "(site " + std::to_string(L.Site) + ")";
    std::snprintf(Buf, sizeof(Buf), "  %-28s %+14lld %12s %11llu/gc\n",
                  Label.c_str(), static_cast<long long>(L.SlopeBytes),
                  fmtBytes(L.LiveBytes).c_str(),
                  static_cast<unsigned long long>(L.FirstFlagged));
    Out += Buf;
  }
  if (R.Leaks.size() > N) {
    std::snprintf(Buf, sizeof(Buf), "  ... %zu more\n", R.Leaks.size() - N);
    Out += Buf;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// JSON rendering
//===----------------------------------------------------------------------===//

namespace {

void jesc(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
  Out += '"';
}

void jkey(std::string &Out, const char *Key, bool &First) {
  if (!First)
    Out += ',';
  First = false;
  Out += '"';
  Out += Key;
  Out += "\":";
}

void ju(std::string &Out, const char *Key, uint64_t V, bool &First) {
  jkey(Out, Key, First);
  Out += std::to_string(V);
}

void ji(std::string &Out, const char *Key, int64_t V, bool &First) {
  jkey(Out, Key, First);
  Out += std::to_string(V);
}

void js(std::string &Out, const char *Key, const std::string &V,
        bool &First) {
  jkey(Out, Key, First);
  jesc(Out, V);
}

void jpcts(std::string &Out, const char *Key, const Pcts &P, uint64_t Total,
           bool &First) {
  jkey(Out, Key, First);
  bool F = true;
  Out += '{';
  ju(Out, "p50_ns", P.P50, F);
  ju(Out, "p95_ns", P.P95, F);
  ju(Out, "max_ns", P.Max, F);
  ju(Out, "total_ns", Total, F);
  Out += '}';
}

} // namespace

std::string obs::renderReportJson(const TraceReport &R, size_t TopN) {
  std::string Out;
  bool Top = true;
  Out += '{';

  js(Out, "program", R.Program, Top);
  js(Out, "mode", R.GenGc ? "generational" : "two-space", Top);
  ju(Out, "collections", R.Events.size(), Top);
  ju(Out, "sites", R.Sites.size(), Top);
  ju(Out, "site_table_bytes", R.SiteTableBytes, Top);
  if (R.HasRun) {
    ju(Out, "run_ok", R.RunOk ? 1 : 0, Top);
    if (!R.RunOk)
      js(Out, "run_error", R.RunError, Top);
    ju(Out, "events_dropped_from_ring",
       static_cast<uint64_t>(R.Run.getInt("events_dropped_from_ring")), Top);
  }

  // --- Pause breakdown, mirroring Section().
  auto Pauses = [&](const char *Key, bool Minor) {
    std::vector<uint64_t> Total, Rend, Trace, Und, Copy, Rem, Red;
    uint64_t SumTotal = 0, SumRend = 0, SumTrace = 0, SumUnd = 0,
             SumCopy = 0, SumRem = 0, SumRed = 0;
    for (const GcEvent &E : R.Events) {
      if (E.Minor != Minor)
        continue;
      Total.push_back(E.TotalNanos);
      Rend.push_back(E.Phases.Rendezvous);
      Trace.push_back(E.Phases.StackTrace);
      Und.push_back(E.Phases.Underive);
      Copy.push_back(E.Phases.Copy);
      Rem.push_back(E.Phases.RemsetRebuild);
      Red.push_back(E.Phases.Rederive);
      SumTotal += E.TotalNanos;
      SumRend += E.Phases.Rendezvous;
      SumTrace += E.Phases.StackTrace;
      SumUnd += E.Phases.Underive;
      SumCopy += E.Phases.Copy;
      SumRem += E.Phases.RemsetRebuild;
      SumRed += E.Phases.Rederive;
    }
    if (Total.empty())
      return;
    jkey(Out, Key, Top);
    bool F = true;
    Out += '{';
    ju(Out, "collections", Total.size(), F);
    jpcts(Out, "total", pcts(Total), SumTotal, F);
    jpcts(Out, "rendezvous", pcts(Rend), SumRend, F);
    jpcts(Out, "stack_trace", pcts(Trace), SumTrace, F);
    jpcts(Out, "underive", pcts(Und), SumUnd, F);
    jpcts(Out, "copy", pcts(Copy), SumCopy, F);
    if (Minor)
      jpcts(Out, "remset", pcts(Rem), SumRem, F);
    jpcts(Out, "rederive", pcts(Red), SumRed, F);
    Out += '}';
  };
  Pauses("minor_pauses", true);
  Pauses("full_pauses", false);

  // --- Volume and decode cache.
  if (!R.Events.empty()) {
    uint64_t Frames = 0, Hits = 0, Misses = 0, BytesCopied = 0,
             BytesPromoted = 0, ObjectsCopied = 0;
    for (const GcEvent &E : R.Events) {
      Frames += E.FramesTraced;
      Hits += E.CacheHits;
      Misses += E.CacheMisses;
      BytesCopied += E.BytesCopied;
      BytesPromoted += E.BytesPromoted;
      ObjectsCopied += E.ObjectsCopied;
    }
    jkey(Out, "volume", Top);
    bool F = true;
    Out += '{';
    ju(Out, "objects_copied", ObjectsCopied, F);
    ju(Out, "bytes_copied", BytesCopied, F);
    ju(Out, "bytes_promoted", BytesPromoted, F);
    ju(Out, "frames_traced", Frames, F);
    ju(Out, "cache_hits", Hits, F);
    ju(Out, "cache_misses", Misses, F);
    Out += '}';
  }

  // --- Parallel-collection load balance.
  uint32_t MaxWorkers = 0;
  for (const GcEvent &E : R.Events)
    MaxWorkers = std::max(MaxWorkers, E.Workers);
  if (MaxWorkers > 1) {
    jkey(Out, "gc_workers", Top);
    Out += '[';
    for (uint32_t W = 0; W != MaxWorkers && W != MaxGcWorkers; ++W) {
      uint64_t SumTrace = 0, SumCopy = 0;
      for (const GcEvent &E : R.Events)
        if (W < E.Workers) {
          SumTrace += E.WorkerTraceNanos[W];
          SumCopy += E.WorkerCopyNanos[W];
        }
      if (W)
        Out += ',';
      bool F = true;
      Out += '{';
      ju(Out, "worker", W, F);
      ju(Out, "trace_ns", SumTrace, F);
      ju(Out, "copy_ns", SumCopy, F);
      Out += '}';
    }
    Out += ']';
  }

  // --- Requests.
  if (!R.Requests.empty()) {
    std::vector<uint64_t> Instrs;
    uint64_t GcNs = 0, Colls = 0;
    for (const TraceReport::Request &Q : R.Requests) {
      Instrs.push_back(Q.Instrs);
      GcNs += Q.GcNanos;
      Colls += Q.Collections;
    }
    Pcts P = pcts(Instrs);
    jkey(Out, "requests", Top);
    bool F = true;
    Out += '{';
    ju(Out, "count", R.Requests.size(), F);
    ju(Out, "instrs_p50", P.P50, F);
    ju(Out, "instrs_p95", P.P95, F);
    ju(Out, "instrs_max", P.Max, F);
    ju(Out, "gc_ns", GcNs, F);
    ju(Out, "gc_collections", Colls, F);
    Out += '}';
  }

  // --- Hot stacks (sampling profiler; tracer order = weight desc).
  if (!R.HotStacks.empty()) {
    jkey(Out, "hot_stacks", Top);
    Out += '[';
    size_t N = std::min(TopN, R.HotStacks.size());
    for (size_t I = 0; I != N; ++I) {
      const TraceReport::HotStack &H = R.HotStacks[I];
      if (I)
        Out += ',';
      bool F = true;
      Out += '{';
      ju(Out, "rank", H.Rank, F);
      ju(Out, "samples", H.Samples, F);
      ju(Out, "weight", H.Weight, F);
      js(Out, "stack", H.Stack, F);
      Out += '}';
    }
    Out += ']';
  }

  // --- Site tables: same ordering contract as the rendered report
  // (key desc, site id asc, stable).
  std::vector<const TraceReport::Site *> Active;
  for (const TraceReport::Site &S : R.Sites)
    if (S.Count)
      Active.push_back(&S);
  auto SiteTable = [&](const char *Key, auto KeyFn) {
    if (Active.empty())
      return;
    std::stable_sort(
        Active.begin(), Active.end(),
        [&](const TraceReport::Site *A, const TraceReport::Site *B) {
          if (KeyFn(*A) != KeyFn(*B))
            return KeyFn(*A) > KeyFn(*B);
          return A->Id < B->Id;
        });
    jkey(Out, Key, Top);
    Out += '[';
    size_t N = std::min(TopN, Active.size());
    for (size_t I = 0; I != N; ++I) {
      const TraceReport::Site &S = *Active[I];
      if (KeyFn(S) == 0)
        break;
      if (I)
        Out += ',';
      bool F = true;
      Out += '{';
      ju(Out, "id", S.Id, F);
      js(Out, "site", siteLabel(S), F);
      ju(Out, "allocs", S.Count, F);
      ju(Out, "bytes", S.Bytes, F);
      ju(Out, "survived", S.Survived, F);
      ju(Out, "survived_bytes", S.SurvivedBytes, F);
      Out += '}';
    }
    Out += ']';
  };
  SiteTable("top_sites_by_bytes",
            [](const TraceReport::Site &S) { return S.Bytes; });
  SiteTable("top_sites_by_survived_bytes",
            [](const TraceReport::Site &S) { return S.SurvivedBytes; });

  // --- Suspected leaks (tracer order: slope desc, site asc).
  if (!R.Leaks.empty()) {
    jkey(Out, "leaks", Top);
    Out += '[';
    for (size_t I = 0; I != R.Leaks.size(); ++I) {
      const TraceReport::Leak &L = R.Leaks[I];
      if (I)
        Out += ',';
      bool F = true;
      Out += '{';
      ju(Out, "site", L.Site, F);
      if (static_cast<size_t>(L.Site) < R.Sites.size())
        js(Out, "label", siteLabel(R.Sites[L.Site]), F);
      ji(Out, "slope_bytes", L.SlopeBytes, F);
      ju(Out, "live_bytes", L.LiveBytes, F);
      ju(Out, "first_flagged", L.FirstFlagged, F);
      ju(Out, "window", L.Window, F);
      Out += '}';
    }
    Out += ']';
  }

  // --- Live at finish by site (bytes desc, id asc — as rendered).
  if (!R.LiveSites.empty()) {
    std::vector<const TraceReport::LiveSite *> Live;
    for (const TraceReport::LiveSite &L : R.LiveSites)
      Live.push_back(&L);
    std::sort(Live.begin(), Live.end(),
              [](const TraceReport::LiveSite *A,
                 const TraceReport::LiveSite *B) {
                if (A->Bytes != B->Bytes)
                  return A->Bytes > B->Bytes;
                return A->Id < B->Id;
              });
    jkey(Out, "live_by_site", Top);
    Out += '[';
    size_t N = std::min(TopN, Live.size());
    for (size_t I = 0; I != N; ++I) {
      const TraceReport::LiveSite &L = *Live[I];
      if (I)
        Out += ',';
      bool F = true;
      Out += '{';
      ji(Out, "id", L.Id, F);
      js(Out, "site",
         L.Id < 0 ? std::string("(no site)")
                  : siteLabel(R.Sites[static_cast<size_t>(L.Id)]),
         F);
      ju(Out, "objects", L.Objects, F);
      ju(Out, "bytes", L.Bytes, F);
      Out += '}';
    }
    Out += ']';
  }

  // --- Age histogram.
  if (!R.AgeHist.empty()) {
    jkey(Out, "age_hist", Top);
    Out += '[';
    for (size_t I = 0; I != R.AgeHist.size(); ++I) {
      const TraceReport::AgeBucket &B = R.AgeHist[I];
      if (I)
        Out += ',';
      bool F = true;
      Out += '{';
      ju(Out, "age", B.Age, F);
      ju(Out, "objects", B.Objects, F);
      ju(Out, "bytes", B.Bytes, F);
      Out += '}';
    }
    Out += ']';
  }

  Out += "}\n";
  return Out;
}
