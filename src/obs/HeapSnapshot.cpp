//===- obs/HeapSnapshot.cpp -----------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/HeapSnapshot.h"

#include "support/ByteCodec.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

using namespace mgc;
using namespace mgc::obs;

//===----------------------------------------------------------------------===//
// Codec
//===----------------------------------------------------------------------===//

namespace {

const char SnapMagic[4] = {'M', 'G', 'H', 'S'};

// Shared codec helpers (support/ByteCodec.h) under the names this file has
// always used.
void writeU32(std::vector<uint8_t> &Out, uint32_t V) {
  appendPackedU32(Out, V);
}

void writeU64(std::vector<uint8_t> &Out, uint64_t V) {
  appendPackedU64(Out, V);
}

void writeStr(std::vector<uint8_t> &Out, const std::string &S) {
  appendPackedStr(Out, S);
}

} // namespace

void obs::encodeSnapshot(const HeapSnapshot &S, std::vector<uint8_t> &Out) {
  Out.insert(Out.end(), SnapMagic, SnapMagic + 4);
  writeU32(Out, SnapshotVersion);
  writeStr(Out, S.Program);
  writeStr(Out, S.ToolVersion);
  writeStr(Out, S.BuildFlags);
  writeU64(Out, S.Seed);
  Out.push_back(static_cast<uint8_t>((S.GenGc ? 1 : 0) |
                                     (S.StacksWalked ? 2 : 0)));
  writeU64(Out, S.Collections);

  writeU32(Out, static_cast<uint32_t>(S.FuncNames.size()));
  for (const std::string &F : S.FuncNames)
    writeStr(Out, F);
  writeU32(Out, static_cast<uint32_t>(S.TypeNames.size()));
  for (const std::string &T : S.TypeNames)
    writeStr(Out, T);
  writeU32(Out, static_cast<uint32_t>(S.Sites.size()));
  for (const HeapSnapshot::Site &St : S.Sites) {
    writeU32(Out, St.Func);
    writeU32(Out, St.Line);
    writeU32(Out, St.Col);
    writeU32(Out, St.Desc);
  }

  writeU32(Out, static_cast<uint32_t>(S.Nodes.size()));
  for (const HeapSnapshot::Node &N : S.Nodes) {
    Out.push_back(N.Gen);
    writeU64(Out, N.OffsetWords);
    writeU32(Out, N.Desc);
    writeU32(Out, N.Site); // NoSite packs as -1: a single byte.
    writeU32(Out, N.Age);
    writeU32(Out, N.ShallowBytes);
    writeU32(Out, N.NumEdges);
    for (uint32_t E = 0; E != N.NumEdges; ++E) {
      writeU32(Out, S.Edges[N.FirstEdge + E].Slot);
      writeU32(Out, S.Edges[N.FirstEdge + E].Target);
    }
  }

  writeU32(Out, static_cast<uint32_t>(S.Roots.size()));
  for (const HeapSnapshot::Root &R : S.Roots) {
    Out.push_back(static_cast<uint8_t>(R.Kind));
    writeU32(Out, R.Thread);
    writeU32(Out, R.Frame);
    writeU32(Out, R.Func); // NoFunc packs as -1.
    appendPacked(Out, R.Index);
    writeU32(Out, R.Node);
  }
}

bool obs::decodeSnapshot(const std::vector<uint8_t> &Blob, HeapSnapshot &S,
                         std::string &Err) {
  S.clear();
  auto Bad = [&](const char *Msg) {
    Err = std::string("snapshot decode: ") + Msg;
    S.clear();
    return false;
  };

  SafeReader R(Blob);
  for (char M : SnapMagic)
    if (R.byte() != static_cast<uint8_t>(M))
      return Bad("bad magic (not a heap snapshot)");
  uint32_t Version = R.u32();
  if (R.failed())
    return Bad("truncated header");
  if (Version != SnapshotVersion)
    return Bad("unsupported snapshot version");

  S.Program = R.str();
  S.ToolVersion = R.str();
  S.BuildFlags = R.str();
  S.Seed = R.u64();
  uint8_t Flags = R.byte();
  S.GenGc = (Flags & 1) != 0;
  S.StacksWalked = (Flags & 2) != 0;
  S.Collections = R.u64();

  uint32_t NFuncs = R.u32();
  if (!R.countOk(NFuncs))
    return Bad("bad function-name count");
  S.FuncNames.reserve(NFuncs);
  for (uint32_t I = 0; I != NFuncs; ++I)
    S.FuncNames.push_back(R.str());
  uint32_t NTypes = R.u32();
  if (!R.countOk(NTypes))
    return Bad("bad type-name count");
  S.TypeNames.reserve(NTypes);
  for (uint32_t I = 0; I != NTypes; ++I)
    S.TypeNames.push_back(R.str());
  uint32_t NSites = R.u32();
  if (!R.countOk(NSites))
    return Bad("bad site count");
  S.Sites.reserve(NSites);
  for (uint32_t I = 0; I != NSites; ++I) {
    HeapSnapshot::Site St;
    St.Func = R.u32();
    St.Line = R.u32();
    St.Col = R.u32();
    St.Desc = R.u32();
    S.Sites.push_back(St);
  }

  uint32_t NNodes = R.u32();
  if (!R.countOk(NNodes))
    return Bad("bad node count");
  S.Nodes.reserve(NNodes);
  for (uint32_t I = 0; I != NNodes; ++I) {
    HeapSnapshot::Node N;
    N.Gen = R.byte();
    N.OffsetWords = R.u64();
    N.Desc = R.u32();
    N.Site = R.u32();
    N.Age = R.u32();
    N.ShallowBytes = R.u32();
    N.NumEdges = R.u32();
    N.FirstEdge = static_cast<uint32_t>(S.Edges.size());
    if (!R.countOk(N.NumEdges))
      return Bad("bad edge count");
    for (uint32_t E = 0; E != N.NumEdges; ++E) {
      HeapSnapshot::Edge Ed;
      Ed.Slot = R.u32();
      Ed.Target = R.u32();
      S.Edges.push_back(Ed);
    }
    if (R.failed())
      return Bad("truncated node table");
    if (N.Gen > 1)
      return Bad("node generation out of range");
    if (N.Desc >= NTypes)
      return Bad("node type descriptor out of range");
    if (N.Site != NoSite && N.Site >= NSites)
      return Bad("node site out of range");
    S.Nodes.push_back(N);
  }
  for (const HeapSnapshot::Edge &E : S.Edges)
    if (E.Target >= NNodes)
      return Bad("edge target out of range");

  uint32_t NRoots = R.u32();
  if (!R.countOk(NRoots))
    return Bad("bad root count");
  S.Roots.reserve(NRoots);
  for (uint32_t I = 0; I != NRoots; ++I) {
    HeapSnapshot::Root Rt;
    uint8_t Kind = R.byte();
    if (Kind > static_cast<uint8_t>(HeapSnapshot::RootKind::Derived))
      return Bad("root kind out of range");
    Rt.Kind = static_cast<HeapSnapshot::RootKind>(Kind);
    Rt.Thread = R.u32();
    Rt.Frame = R.u32();
    Rt.Func = R.u32();
    Rt.Index = R.word();
    Rt.Node = R.u32();
    if (R.failed())
      return Bad("truncated root table");
    if (Rt.Node >= NNodes)
      return Bad("root node out of range");
    if (Rt.Func != NoFunc && Rt.Func >= NFuncs)
      return Bad("root function out of range");
    S.Roots.push_back(Rt);
  }

  if (R.failed())
    return Bad("truncated snapshot");
  if (R.remaining() != 0)
    return Bad("trailing bytes after snapshot");
  return true;
}

bool obs::writeSnapshotFile(const std::string &Path, const HeapSnapshot &S,
                            std::string &Err) {
  std::vector<uint8_t> Blob;
  encodeSnapshot(S, Blob);
  std::ofstream F(Path, std::ios::binary | std::ios::trunc);
  if (!F) {
    Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  F.write(reinterpret_cast<const char *>(Blob.data()),
          static_cast<std::streamsize>(Blob.size()));
  F.flush();
  if (!F) {
    Err = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

bool obs::readSnapshotFile(const std::string &Path, HeapSnapshot &S,
                           std::string &Err) {
  std::ifstream F(Path, std::ios::binary);
  if (!F) {
    Err = "cannot open '" + Path + "'";
    return false;
  }
  std::vector<uint8_t> Blob((std::istreambuf_iterator<char>(F)),
                            std::istreambuf_iterator<char>());
  return decodeSnapshot(Blob, S, Err);
}

//===----------------------------------------------------------------------===//
// Dominators and retained sizes
//===----------------------------------------------------------------------===//

std::vector<int32_t> obs::computeIdoms(const HeapSnapshot &S) {
  size_t N = S.Nodes.size();
  std::vector<int32_t> Idom(N, IdomUnreachable);
  if (N == 0)
    return Idom;

  std::vector<char> IsEntry(N, 0);
  for (const HeapSnapshot::Root &R : S.Roots)
    IsEntry[R.Node] = 1;

  // Post-order over the reachable subgraph by iterative DFS from every
  // entry node (the super-root's successors), then reversed: RPO number 0
  // is the super-root, reachable nodes get 1..K.
  std::vector<uint32_t> Post;
  Post.reserve(N);
  std::vector<char> State(N, 0); // 0 new, 1 open, 2 done
  struct DfsFrame {
    uint32_t Node;
    uint32_t EdgeI;
  };
  std::vector<DfsFrame> Stack;
  for (uint32_t E = 0; E != N; ++E) {
    if (!IsEntry[E] || State[E])
      continue;
    State[E] = 1;
    Stack.push_back({E, 0});
    while (!Stack.empty()) {
      DfsFrame &F = Stack.back();
      const HeapSnapshot::Node &Nd = S.Nodes[F.Node];
      if (F.EdgeI < Nd.NumEdges) {
        uint32_t T = S.Edges[Nd.FirstEdge + F.EdgeI++].Target;
        if (!State[T]) {
          State[T] = 1;
          Stack.push_back({T, 0});
        }
      } else {
        Post.push_back(F.Node);
        State[F.Node] = 2;
        Stack.pop_back();
      }
    }
  }

  size_t K = Post.size();
  std::vector<uint32_t> RpoNum(N, 0); // 0 = unreachable.
  std::vector<uint32_t> ByRpo(K + 1, 0);
  for (size_t I = 0; I != K; ++I) {
    uint32_t Node = Post[K - 1 - I];
    RpoNum[Node] = static_cast<uint32_t>(I + 1);
    ByRpo[I + 1] = Node;
  }

  // Predecessor lists in RPO space; entry nodes gain the super-root (0).
  std::vector<std::vector<uint32_t>> Preds(K + 1);
  for (uint32_t Id = 0; Id != N; ++Id) {
    uint32_t Rn = RpoNum[Id];
    if (Rn == 0)
      continue;
    if (IsEntry[Id])
      Preds[Rn].push_back(0);
    const HeapSnapshot::Node &Nd = S.Nodes[Id];
    for (uint32_t E = 0; E != Nd.NumEdges; ++E)
      Preds[RpoNum[S.Edges[Nd.FirstEdge + E].Target]].push_back(Rn);
  }

  // Cooper-Harvey-Kennedy iteration ("A Simple, Fast Dominance
  // Algorithm"): converges in a couple of passes on reducible graphs and
  // is robust on the cycles heaps routinely contain.
  constexpr uint32_t Undef = 0xFFFFFFFFu;
  std::vector<uint32_t> Doms(K + 1, Undef);
  Doms[0] = 0;
  auto Intersect = [&Doms](uint32_t A, uint32_t B) {
    while (A != B) {
      while (A > B)
        A = Doms[A];
      while (B > A)
        B = Doms[B];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t Rn = 1; Rn <= K; ++Rn) {
      uint32_t NewIdom = Undef;
      for (uint32_t P : Preds[Rn]) {
        if (Doms[P] == Undef)
          continue;
        NewIdom = NewIdom == Undef ? P : Intersect(P, NewIdom);
      }
      if (NewIdom != Undef && Doms[Rn] != NewIdom) {
        Doms[Rn] = NewIdom;
        Changed = true;
      }
    }
  }

  for (uint32_t Rn = 1; Rn <= K; ++Rn)
    Idom[ByRpo[Rn]] = Doms[Rn] == 0
                          ? IdomRoot
                          : static_cast<int32_t>(ByRpo[Doms[Rn]]);
  return Idom;
}

std::vector<uint64_t> obs::retainedSizes(const HeapSnapshot &S,
                                         const std::vector<int32_t> &Idom) {
  size_t N = S.Nodes.size();
  std::vector<uint64_t> Ret(N, 0);
  std::vector<uint32_t> PendingKids(N, 0);
  for (size_t I = 0; I != N; ++I) {
    if (Idom[I] == IdomUnreachable)
      continue;
    Ret[I] = S.Nodes[I].ShallowBytes;
    if (Idom[I] >= 0)
      ++PendingKids[static_cast<size_t>(Idom[I])];
  }
  // Accumulate leaves-up over the dominator tree (Kahn-style, no
  // recursion): a node joins its dominator once all its own dominatees
  // have joined it.
  std::vector<uint32_t> Ready;
  for (size_t I = 0; I != N; ++I)
    if (Idom[I] != IdomUnreachable && PendingKids[I] == 0)
      Ready.push_back(static_cast<uint32_t>(I));
  while (!Ready.empty()) {
    uint32_t I = Ready.back();
    Ready.pop_back();
    int32_t D = Idom[I];
    if (D < 0)
      continue;
    Ret[static_cast<size_t>(D)] += Ret[I];
    if (--PendingKids[static_cast<size_t>(D)] == 0)
      Ready.push_back(static_cast<uint32_t>(D));
  }
  return Ret;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

std::string typeName(const HeapSnapshot &S, uint32_t Desc) {
  if (Desc < S.TypeNames.size() && !S.TypeNames[Desc].empty())
    return S.TypeNames[Desc];
  return "desc" + std::to_string(Desc);
}

std::string nodeLabel(const HeapSnapshot &S, uint32_t Id) {
  const HeapSnapshot::Node &N = S.Nodes[Id];
  std::string L = "#" + std::to_string(Id) + " " + typeName(S, N.Desc) + " " +
                  std::to_string(N.ShallowBytes) + "B age=" +
                  std::to_string(N.Age);
  L += N.Gen ? " gen=nursery" : " gen=old";
  return L;
}

std::string funcName(const HeapSnapshot &S, uint32_t Func) {
  if (Func == NoFunc)
    return "(none)";
  if (Func < S.FuncNames.size())
    return S.FuncNames[Func];
  return "func" + std::to_string(Func);
}

std::string rootLabel(const HeapSnapshot &S, const HeapSnapshot::Root &R) {
  char Buf[160];
  switch (R.Kind) {
  case HeapSnapshot::RootKind::Global:
    std::snprintf(Buf, sizeof(Buf), "global word %d", R.Index);
    break;
  case HeapSnapshot::RootKind::FpSlot:
    std::snprintf(Buf, sizeof(Buf), "%s frame %u fp[%d] (thread %u)",
                  funcName(S, R.Func).c_str(), R.Frame, R.Index, R.Thread);
    break;
  case HeapSnapshot::RootKind::ApSlot:
    std::snprintf(Buf, sizeof(Buf), "%s frame %u ap[%d] (thread %u)",
                  funcName(S, R.Func).c_str(), R.Frame, R.Index, R.Thread);
    break;
  case HeapSnapshot::RootKind::Reg:
    std::snprintf(Buf, sizeof(Buf), "%s frame %u r%d (thread %u)",
                  funcName(S, R.Func).c_str(), R.Frame, R.Index, R.Thread);
    break;
  case HeapSnapshot::RootKind::Derived:
    std::snprintf(Buf, sizeof(Buf), "%s frame %u derived value (thread %u)",
                  funcName(S, R.Func).c_str(), R.Frame, R.Thread);
    break;
  }
  return Buf;
}

struct GroupAgg {
  uint64_t Objects = 0;
  uint64_t Shallow = 0;
  uint64_t Retained = 0;
};

/// Marks nodes dominated (transitively) by another node of the same group:
/// their retained bytes are already inside that ancestor's, so a group
/// total must not add them again.  One DFS over the dominator forest with
/// a per-group active counter.
std::vector<char> coveredBySameGroup(const HeapSnapshot &S,
                                     const std::vector<int32_t> &Idom,
                                     const std::vector<uint32_t> &GroupOf,
                                     size_t NumGroups) {
  size_t N = S.Nodes.size();
  std::vector<char> Covered(N, 0);
  std::vector<std::vector<uint32_t>> Kids(N);
  std::vector<uint32_t> Tops;
  for (uint32_t I = 0; I != N; ++I) {
    if (Idom[I] == IdomRoot)
      Tops.push_back(I);
    else if (Idom[I] >= 0)
      Kids[static_cast<size_t>(Idom[I])].push_back(I);
  }
  std::vector<uint32_t> Active(NumGroups, 0);
  struct Frame {
    uint32_t Node;
    uint32_t KidI;
  };
  std::vector<Frame> Stack;
  for (uint32_t T : Tops) {
    ++Active[GroupOf[T]];
    Stack.push_back({T, 0});
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      if (F.KidI < Kids[F.Node].size()) {
        uint32_t C = Kids[F.Node][F.KidI++];
        Covered[C] = Active[GroupOf[C]] > 0;
        ++Active[GroupOf[C]];
        Stack.push_back({C, 0});
      } else {
        --Active[GroupOf[F.Node]];
        Stack.pop_back();
      }
    }
  }
  return Covered;
}

/// Renders one "top groups" table sorted by the chosen column.
void renderGroupTable(std::string &O, const char *Title,
                      const std::vector<GroupAgg> &Aggs,
                      const std::vector<std::string> &Labels, bool ByRetained,
                      size_t TopN) {
  std::vector<uint32_t> Order;
  for (uint32_t G = 0; G != Aggs.size(); ++G)
    if (Aggs[G].Objects != 0)
      Order.push_back(G);
  std::stable_sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
    uint64_t Ka = ByRetained ? Aggs[A].Retained : Aggs[A].Shallow;
    uint64_t Kb = ByRetained ? Aggs[B].Retained : Aggs[B].Shallow;
    if (Ka != Kb)
      return Ka > Kb;
    return A < B;
  });
  if (Order.size() > TopN)
    Order.resize(TopN);
  O += Title;
  O += "\n    retained     shallow  objects\n";
  char Buf[64];
  for (uint32_t G : Order) {
    std::snprintf(Buf, sizeof(Buf), "  %10llu  %10llu  %7llu  ",
                  static_cast<unsigned long long>(Aggs[G].Retained),
                  static_cast<unsigned long long>(Aggs[G].Shallow),
                  static_cast<unsigned long long>(Aggs[G].Objects));
    O += Buf;
    O += Labels[G];
    O += "\n";
  }
}

} // namespace

std::string obs::siteLabel(const HeapSnapshot &S, uint32_t Site) {
  if (Site >= S.Sites.size())
    return "(no site)";
  const HeapSnapshot::Site &St = S.Sites[Site];
  std::string L = funcName(S, St.Func) + ":" + std::to_string(St.Line) + ":" +
                  std::to_string(St.Col) + " (" + typeName(S, St.Desc) + ")";
  return L;
}

std::string obs::renderSnapshot(const HeapSnapshot &S, size_t TopN) {
  std::string O;
  char Buf[256];
  uint64_t Total = S.totalBytes();
  std::snprintf(Buf, sizeof(Buf),
                "snapshot: program '%s', %s collector, after %llu "
                "collection(s)\n"
                "  %zu nodes, %zu edges, %zu roots, %llu live bytes\n",
                S.Program.c_str(), S.GenGc ? "generational" : "two-space",
                static_cast<unsigned long long>(S.Collections),
                S.Nodes.size(), S.Edges.size(), S.Roots.size(),
                static_cast<unsigned long long>(Total));
  O += Buf;
  if (!S.StacksWalked)
    O += "  (post-mortem capture: stacks not walked, roots are globals "
         "only)\n";

  size_t NGlobal = 0, NSlot = 0, NReg = 0, NDerived = 0;
  for (const HeapSnapshot::Root &R : S.Roots)
    switch (R.Kind) {
    case HeapSnapshot::RootKind::Global:
      ++NGlobal;
      break;
    case HeapSnapshot::RootKind::FpSlot:
    case HeapSnapshot::RootKind::ApSlot:
      ++NSlot;
      break;
    case HeapSnapshot::RootKind::Reg:
      ++NReg;
      break;
    case HeapSnapshot::RootKind::Derived:
      ++NDerived;
      break;
    }
  std::snprintf(Buf, sizeof(Buf),
                "  roots: %zu globals, %zu stack slots, %zu registers, "
                "%zu derived\n",
                NGlobal, NSlot, NReg, NDerived);
  O += Buf;
  if (S.Nodes.empty())
    return O;

  std::vector<int32_t> Idom = computeIdoms(S);
  std::vector<uint64_t> Ret = retainedSizes(S, Idom);
  uint64_t RootRetained = 0;
  for (size_t I = 0; I != S.Nodes.size(); ++I)
    if (Idom[I] == IdomRoot)
      RootRetained += Ret[I];
  std::snprintf(Buf, sizeof(Buf),
                "  root-retained total: %llu bytes (%s live bytes)\n",
                static_cast<unsigned long long>(RootRetained),
                RootRetained == Total ? "equals" : "DOES NOT EQUAL");
  O += Buf;

  // --- Grouping by site.  NoSite objects pool in the trailing group.
  size_t SiteGroups = S.Sites.size() + 1;
  std::vector<uint32_t> SiteOf(S.Nodes.size());
  for (size_t I = 0; I != S.Nodes.size(); ++I)
    SiteOf[I] = S.Nodes[I].Site < S.Sites.size()
                    ? S.Nodes[I].Site
                    : static_cast<uint32_t>(S.Sites.size());
  std::vector<char> SiteCovered =
      coveredBySameGroup(S, Idom, SiteOf, SiteGroups);
  std::vector<GroupAgg> BySite(SiteGroups);
  for (size_t I = 0; I != S.Nodes.size(); ++I) {
    GroupAgg &A = BySite[SiteOf[I]];
    ++A.Objects;
    A.Shallow += S.Nodes[I].ShallowBytes;
    if (!SiteCovered[I] && Idom[I] != IdomUnreachable)
      A.Retained += Ret[I];
  }
  std::vector<std::string> SiteLabels(SiteGroups);
  for (uint32_t G = 0; G != SiteGroups; ++G)
    SiteLabels[G] = siteLabel(S, G < S.Sites.size() ? G : NoSite);

  // --- Grouping by type descriptor.
  size_t TypeGroups = S.TypeNames.size();
  std::vector<uint32_t> TypeOf(S.Nodes.size());
  for (size_t I = 0; I != S.Nodes.size(); ++I)
    TypeOf[I] = S.Nodes[I].Desc;
  std::vector<char> TypeCovered =
      coveredBySameGroup(S, Idom, TypeOf, TypeGroups);
  std::vector<GroupAgg> ByType(TypeGroups);
  for (size_t I = 0; I != S.Nodes.size(); ++I) {
    GroupAgg &A = ByType[TypeOf[I]];
    ++A.Objects;
    A.Shallow += S.Nodes[I].ShallowBytes;
    if (!TypeCovered[I] && Idom[I] != IdomUnreachable)
      A.Retained += Ret[I];
  }
  std::vector<std::string> TypeLabels(TypeGroups);
  for (uint32_t G = 0; G != TypeGroups; ++G)
    TypeLabels[G] = typeName(S, G);

  O += "\n";
  renderGroupTable(O, "top sites by retained bytes:", BySite, SiteLabels,
                   /*ByRetained=*/true, TopN);
  O += "\n";
  renderGroupTable(O, "top sites by shallow bytes:", BySite, SiteLabels,
                   /*ByRetained=*/false, TopN);
  O += "\n";
  renderGroupTable(O, "top types by retained bytes:", ByType, TypeLabels,
                   /*ByRetained=*/true, TopN);
  O += "\n";
  renderGroupTable(O, "top types by shallow bytes:", ByType, TypeLabels,
                   /*ByRetained=*/false, TopN);

  // --- Age histogram (collection-count ages from the attribution table).
  std::map<uint32_t, GroupAgg> Ages;
  for (const HeapSnapshot::Node &N : S.Nodes) {
    GroupAgg &A = Ages[N.Age];
    ++A.Objects;
    A.Shallow += N.ShallowBytes;
  }
  O += "\nage histogram (collections survived):\n";
  for (const auto &[Age, A] : Ages) {
    std::snprintf(Buf, sizeof(Buf), "  age %3u: %7llu objects, %10llu bytes\n",
                  Age, static_cast<unsigned long long>(A.Objects),
                  static_cast<unsigned long long>(A.Shallow));
    O += Buf;
  }
  return O;
}

//===----------------------------------------------------------------------===//
// Backward reference graph
//===----------------------------------------------------------------------===//

Backgraph obs::buildBackgraph(const HeapSnapshot &S) {
  Backgraph B;
  size_t N = S.Nodes.size();
  B.TotalInEdges = S.Edges.size();
  B.DroppedIn.assign(N, 0);
  B.Height.assign(N, NoHeight);
  B.First.assign(N + 1, 0);

  // Two passes over the forward CSR in identical (source-ascending) order:
  // count capped in-degrees, then fill — so the sampled in-edges are the
  // first BackgraphMaxInPerNode referencers in node order, deterministic
  // for a deterministic snapshot.
  std::vector<uint32_t> Count(N, 0);
  for (uint32_t Src = 0; Src != N; ++Src) {
    const HeapSnapshot::Node &Nd = S.Nodes[Src];
    for (uint32_t E = 0; E != Nd.NumEdges; ++E) {
      uint32_t T = S.Edges[Nd.FirstEdge + E].Target;
      if (Count[T] < BackgraphMaxInPerNode)
        ++Count[T];
      else
        ++B.DroppedIn[T];
    }
  }
  for (size_t I = 0; I != N; ++I)
    B.First[I + 1] = B.First[I] + Count[I];
  B.In.resize(B.First[N]);
  std::vector<uint32_t> Fill(N, 0);
  for (uint32_t Src = 0; Src != N; ++Src) {
    const HeapSnapshot::Node &Nd = S.Nodes[Src];
    for (uint32_t E = 0; E != Nd.NumEdges; ++E) {
      const HeapSnapshot::Edge &Ed = S.Edges[Nd.FirstEdge + E];
      if (Fill[Ed.Target] < Count[Ed.Target])
        B.In[B.First[Ed.Target] + Fill[Ed.Target]++] = {Src, Ed.Slot};
    }
  }

  // Heights: multi-source BFS from every rooted node over forward edges.
  std::vector<uint32_t> Queue;
  for (const HeapSnapshot::Root &R : S.Roots)
    if (B.Height[R.Node] == NoHeight) {
      B.Height[R.Node] = 0;
      Queue.push_back(R.Node);
    }
  for (size_t Head = 0; Head != Queue.size(); ++Head) {
    uint32_t I = Queue[Head];
    const HeapSnapshot::Node &Nd = S.Nodes[I];
    for (uint32_t E = 0; E != Nd.NumEdges; ++E) {
      uint32_t T = S.Edges[Nd.FirstEdge + E].Target;
      if (B.Height[T] == NoHeight) {
        B.Height[T] = B.Height[I] + 1;
        Queue.push_back(T);
      }
    }
  }
  return B;
}

std::string obs::renderRetainingPaths(const HeapSnapshot &S, uint32_t Node,
                                      size_t MaxPaths) {
  if (Node >= S.Nodes.size())
    return "path: node #" + std::to_string(Node) + " out of range (" +
           std::to_string(S.Nodes.size()) + " nodes)\n";
  Backgraph B = buildBackgraph(S);
  if (B.Height[Node] == NoHeight)
    return "path: node #" + std::to_string(Node) +
           " is not reachable from any root\n";

  std::vector<int32_t> Idom = computeIdoms(S);
  std::vector<uint64_t> Ret = retainedSizes(S, Idom);
  std::vector<char> IsRooted(S.Nodes.size(), 0);
  for (const HeapSnapshot::Root &R : S.Roots)
    IsRooted[R.Node] = 1;

  // Explore each node's in-edges heaviest-retainer first, so under the
  // exploration budget the paths that matter are found before truncation.
  for (size_t I = 0; I != S.Nodes.size(); ++I)
    std::stable_sort(B.In.begin() + B.First[I], B.In.begin() + B.First[I + 1],
                     [&Ret](const Backgraph::InEdge &A,
                            const Backgraph::InEdge &C) {
                       if (Ret[A.Source] != Ret[C.Source])
                         return Ret[A.Source] > Ret[C.Source];
                       if (A.Source != C.Source)
                         return A.Source < C.Source;
                       return A.Slot < C.Slot;
                     });

  // Backward DFS from the target with per-path cycle exclusion: every time
  // the walk stands on a rooted node it has found one complete retaining
  // path (target .. root, backward).
  struct Found {
    std::vector<uint32_t> Nodes; ///< target first, rooted head last.
    std::vector<uint32_t> Slots; ///< Slots[i]: edge Nodes[i+1] -> Nodes[i].
  };
  struct Frame {
    uint32_t Node;
    uint32_t NextIn;
  };
  std::vector<Found> Paths;
  std::vector<Frame> Stack{{Node, 0}};
  std::vector<uint32_t> PathSlots;
  std::vector<char> OnPath(S.Nodes.size(), 0);
  OnPath[Node] = 1;
  if (IsRooted[Node])
    Paths.push_back({{Node}, {}});
  size_t Budget = 1u << 16;
  bool Truncated = false;
  while (!Stack.empty()) {
    if (Paths.size() >= MaxPaths || Budget == 0) {
      Truncated = true;
      break;
    }
    uint32_t Cur = Stack.back().Node;
    uint32_t Lo = B.First[Cur];
    uint32_t Deg = B.First[Cur + 1] - Lo;
    uint32_t J = Stack.back().NextIn;
    uint32_t Pick = Deg;
    while (J < Deg) {
      if (Budget)
        --Budget;
      if (!OnPath[B.In[Lo + J].Source]) {
        Pick = J;
        break;
      }
      ++J;
    }
    if (Pick == Deg) {
      OnPath[Cur] = 0;
      Stack.pop_back();
      if (!Stack.empty())
        PathSlots.pop_back();
      continue;
    }
    Stack.back().NextIn = Pick + 1;
    const Backgraph::InEdge &IE = B.In[Lo + Pick];
    Stack.push_back({IE.Source, 0});
    OnPath[IE.Source] = 1;
    PathSlots.push_back(IE.Slot);
    if (IsRooted[IE.Source]) {
      Found P;
      for (const Frame &G : Stack)
        P.Nodes.push_back(G.Node);
      P.Slots = PathSlots;
      Paths.push_back(std::move(P));
    }
  }

  // Rank by the dominator weight of the rooted head, heaviest first; the
  // first path printed is the reference to cut.
  std::stable_sort(Paths.begin(), Paths.end(),
                   [&Ret](const Found &A, const Found &C) {
                     uint64_t Ra = Ret[A.Nodes.back()],
                              Rc = Ret[C.Nodes.back()];
                     if (Ra != Rc)
                       return Ra > Rc;
                     if (A.Nodes.size() != C.Nodes.size())
                       return A.Nodes.size() < C.Nodes.size();
                     return A.Nodes < C.Nodes;
                   });

  std::string O = "retaining paths to " + nodeLabel(S, Node) + ": " +
                  std::to_string(Paths.size()) + " path(s)";
  if (Truncated)
    O += " (enumeration truncated)";
  if (uint32_t Dropped = B.DroppedIn[Node])
    O += " (" + std::to_string(Dropped) + " in-edge(s) beyond the per-node "
                                          "sample cap not explored)";
  O += ", ranked by root retained bytes:\n\n";
  for (const Found &P : Paths) {
    uint32_t Head = P.Nodes.back();
    O += "path to " + nodeLabel(S, Node) + " (" +
         std::to_string(P.Nodes.size() - 1) + " hop(s)); root retains " +
         std::to_string(Ret[Head]) + " bytes:\n";
    for (const HeapSnapshot::Root &R : S.Roots)
      if (R.Node == Head) {
        O += "  root: " + rootLabel(S, R) + "\n";
        break;
      }
    O += "  " + nodeLabel(S, Head) + "\n";
    for (size_t I = P.Nodes.size() - 1; I-- > 0;)
      O += "    -[word " + std::to_string(P.Slots[I]) + "]-> " +
           nodeLabel(S, P.Nodes[I]) + "\n";
    O += "\n";
  }
  return O;
}

std::string obs::renderPathTo(const HeapSnapshot &S, uint32_t Node) {
  return renderRetainingPaths(S, Node, /*MaxPaths=*/16);
}

namespace {

/// Per-site-label growth between two snapshots.  Aggregating by *label*
/// (not id) lets snapshots from different processes of the same program
/// line up even if site ids were assigned differently.
struct Delta {
  int64_t Objects = 0;
  int64_t Bytes = 0;
  uint64_t NewObjects = 0;
  uint64_t NewBytes = 0;
};

std::map<std::string, Delta> siteDeltas(const HeapSnapshot &Old,
                                        const HeapSnapshot &New) {
  std::map<std::string, Delta> Per;
  for (const HeapSnapshot::Node &N : Old.Nodes) {
    Delta &D = Per[siteLabel(Old, N.Site)];
    --D.Objects;
    D.Bytes -= N.ShallowBytes;
  }
  for (const HeapSnapshot::Node &N : New.Nodes) {
    Delta &D = Per[siteLabel(New, N.Site)];
    ++D.Objects;
    D.Bytes += N.ShallowBytes;
    ++D.NewObjects;
    D.NewBytes += N.ShallowBytes;
  }
  return Per;
}

} // namespace

std::string obs::diffSnapshots(const HeapSnapshot &Old, const HeapSnapshot &New,
                               size_t TopN) {
  std::map<std::string, Delta> Per = siteDeltas(Old, New);

  std::vector<const std::pair<const std::string, Delta> *> Order;
  for (const auto &KV : Per)
    Order.push_back(&KV);
  std::stable_sort(Order.begin(), Order.end(), [](const auto *A, const auto *B) {
    if (A->second.Bytes != B->second.Bytes)
      return A->second.Bytes > B->second.Bytes;
    return A->first < B->first;
  });

  char Buf[256];
  std::string O;
  std::snprintf(Buf, sizeof(Buf),
                "heap diff: %llu -> %llu live bytes (%+lld), %zu -> %zu "
                "objects (%+lld)\n"
                "per-site growth (new - old), by byte delta:\n"
                "     d-bytes   d-objects   now-bytes  site\n",
                static_cast<unsigned long long>(Old.totalBytes()),
                static_cast<unsigned long long>(New.totalBytes()),
                static_cast<long long>(static_cast<int64_t>(New.totalBytes()) -
                                       static_cast<int64_t>(Old.totalBytes())),
                Old.Nodes.size(), New.Nodes.size(),
                static_cast<long long>(
                    static_cast<int64_t>(New.Nodes.size()) -
                    static_cast<int64_t>(Old.Nodes.size())));
  O += Buf;
  size_t Shown = 0;
  for (const auto *KV : Order) {
    if (Shown++ == TopN)
      break;
    std::snprintf(Buf, sizeof(Buf), "  %+10lld  %+10lld  %10llu  ",
                  static_cast<long long>(KV->second.Bytes),
                  static_cast<long long>(KV->second.Objects),
                  static_cast<unsigned long long>(KV->second.NewBytes));
    O += Buf;
    O += KV->first;
    O += "\n";
  }
  return O;
}

//===----------------------------------------------------------------------===//
// Watch mode
//===----------------------------------------------------------------------===//

namespace {

/// Per-site retaining shape within one snapshot: how close the site's
/// objects sit to the roots, how many are directly rooted, and how many
/// references retain them.  Drift of these numbers across a snapshot
/// stream is the watch report's retaining-path churn.
struct SiteShape {
  bool Present = false;
  uint32_t MinHeight = NoHeight;
  uint64_t Rooted = 0;  ///< Nodes with height 0.
  uint64_t InEdges = 0; ///< Sampled + dropped in-edges over the site.
};

std::map<std::string, SiteShape> siteShapes(const HeapSnapshot &S,
                                            const Backgraph &B) {
  std::map<std::string, SiteShape> Per;
  for (size_t I = 0; I != S.Nodes.size(); ++I) {
    SiteShape &Sh = Per[siteLabel(S, S.Nodes[I].Site)];
    Sh.Present = true;
    if (B.Height[I] < Sh.MinHeight)
      Sh.MinHeight = B.Height[I];
    if (B.Height[I] == 0)
      ++Sh.Rooted;
    Sh.InEdges += (B.First[I + 1] - B.First[I]) + B.DroppedIn[I];
  }
  return Per;
}

} // namespace

std::string obs::watchSnapshots(const std::vector<HeapSnapshot> &Stream,
                                size_t TopN, bool &CrosscheckOk) {
  CrosscheckOk = true;
  if (Stream.size() < 2) {
    CrosscheckOk = false;
    return "watch: need at least 2 snapshots\n";
  }
  char Buf[256];
  std::string O;
  const HeapSnapshot &FirstS = Stream.front(), &LastS = Stream.back();
  std::snprintf(Buf, sizeof(Buf),
                "watch: program '%s', %zu snapshots, collections %llu -> "
                "%llu\n\n",
                FirstS.Program.c_str(), Stream.size(),
                static_cast<unsigned long long>(FirstS.Collections),
                static_cast<unsigned long long>(LastS.Collections));
  O += Buf;

  // --- Per-snapshot totals + crosscheck.  Root-retained == live bytes is
  // the same conservation the capture-time independent re-trace validates;
  // the backgraph must conserve the forward edge count.
  O += "snapshot  collections     nodes       bytes   in-edges  check\n";
  std::vector<Backgraph> Graphs;
  Graphs.reserve(Stream.size());
  for (size_t I = 0; I != Stream.size(); ++I) {
    const HeapSnapshot &S = Stream[I];
    std::vector<int32_t> Idom = computeIdoms(S);
    std::vector<uint64_t> Ret = retainedSizes(S, Idom);
    uint64_t RootRetained = 0;
    for (size_t J = 0; J != S.Nodes.size(); ++J)
      if (Idom[J] == IdomRoot)
        RootRetained += Ret[J];
    Graphs.push_back(buildBackgraph(S));
    const Backgraph &B = Graphs.back();
    uint64_t DroppedSum = 0;
    for (uint32_t D : B.DroppedIn)
      DroppedSum += D;
    bool Ok = RootRetained == S.totalBytes() &&
              B.In.size() + DroppedSum == S.Edges.size() &&
              B.TotalInEdges == S.Edges.size();
    if (!Ok)
      CrosscheckOk = false;
    std::snprintf(Buf, sizeof(Buf),
                  "  %6zu  %10llu  %8zu  %10llu  %9zu  %s\n", I + 1,
                  static_cast<unsigned long long>(S.Collections),
                  S.Nodes.size(),
                  static_cast<unsigned long long>(S.totalBytes()),
                  S.Edges.size(), Ok ? "ok" : "MISMATCH");
    O += Buf;
  }

  // --- Incremental growth between consecutive snapshots.
  O += "\nincremental growth (consecutive snapshots):\n";
  for (size_t I = 1; I != Stream.size(); ++I) {
    const HeapSnapshot &A = Stream[I - 1], &C = Stream[I];
    std::map<std::string, Delta> Per = siteDeltas(A, C);
    const std::pair<const std::string, Delta> *Top = nullptr;
    for (const auto &KV : Per)
      if (!Top || KV.second.Bytes > Top->second.Bytes)
        Top = &KV;
    std::snprintf(Buf, sizeof(Buf), "  [%zu -> %zu] %+lld bytes, %+lld "
                                    "objects",
                  I, I + 1,
                  static_cast<long long>(
                      static_cast<int64_t>(C.totalBytes()) -
                      static_cast<int64_t>(A.totalBytes())),
                  static_cast<long long>(
                      static_cast<int64_t>(C.Nodes.size()) -
                      static_cast<int64_t>(A.Nodes.size())));
    O += Buf;
    if (Top && Top->second.Bytes > 0) {
      std::snprintf(Buf, sizeof(Buf), "; top growth %+lld B at %s",
                    static_cast<long long>(Top->second.Bytes),
                    Top->first.c_str());
      O += Buf;
    }
    O += "\n";
  }

  // --- Cumulative per-site growth, first -> last.
  O += "\ncumulative ";
  O += diffSnapshots(FirstS, LastS, TopN);

  // --- Retaining-path churn: how each growing site's shortest root
  // distance, directly-rooted count, and in-edge volume drifted.
  std::map<std::string, SiteShape> ShFirst = siteShapes(FirstS, Graphs.front());
  std::map<std::string, SiteShape> ShLast = siteShapes(LastS, Graphs.back());
  std::map<std::string, Delta> Cum = siteDeltas(FirstS, LastS);
  std::vector<const std::pair<const std::string, Delta> *> Order;
  for (const auto &KV : Cum)
    if (ShLast.count(KV.first))
      Order.push_back(&KV);
  std::stable_sort(Order.begin(), Order.end(),
                   [](const auto *A, const auto *B) {
                     if (A->second.Bytes != B->second.Bytes)
                       return A->second.Bytes > B->second.Bytes;
                     return A->first < B->first;
                   });
  if (Order.size() > TopN)
    Order.resize(TopN);
  O += "\nretaining-path churn (first -> last), by cumulative byte "
       "growth:\n"
       "   minheight     rooted   in-edges  site\n";
  for (const auto *KV : Order) {
    const SiteShape &L = ShLast[KV->first];
    auto FIt = ShFirst.find(KV->first);
    if (FIt == ShFirst.end() || !FIt->second.Present) {
      std::snprintf(Buf, sizeof(Buf), "  %10u  %9llu  %9llu  %s (new)\n",
                    L.MinHeight,
                    static_cast<unsigned long long>(L.Rooted),
                    static_cast<unsigned long long>(L.InEdges),
                    KV->first.c_str());
    } else {
      const SiteShape &F = FIt->second;
      std::snprintf(
          Buf, sizeof(Buf), "  %7u%+-3lld  %6llu%+-3lld  %6llu%+-3lld  %s\n",
          L.MinHeight,
          static_cast<long long>(static_cast<int64_t>(L.MinHeight) -
                                 static_cast<int64_t>(F.MinHeight)),
          static_cast<unsigned long long>(L.Rooted),
          static_cast<long long>(static_cast<int64_t>(L.Rooted) -
                                 static_cast<int64_t>(F.Rooted)),
          static_cast<unsigned long long>(L.InEdges),
          static_cast<long long>(static_cast<int64_t>(L.InEdges) -
                                 static_cast<int64_t>(F.InEdges)),
          KV->first.c_str());
    }
    O += Buf;
  }
  return O;
}
