//===- obs/HeapSnapshot.h - Precise heap-graph snapshots --------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap-snapshot data model and its analyses.  A snapshot is a precise,
/// versioned dump of the object graph at a gc-point: the compiler-emitted
/// tables let the capture code (gc/Snapshot.h) enumerate *exactly* the live
/// roots — stack slots, registers, derived values, globals, each with its
/// frame and function — which a conservative system can only approximate.
/// Nodes carry the type descriptor, shallow size, generation, and the
/// allocation site + collection-count age from the persistent attribution
/// side table (obs/Trace.h); edges carry the pointer's slot index.
///
/// Addresses are normalized to (generation, word offset from the space
/// base) and node ids are breadth-first discovery order over the sorted
/// root list, so two runs of a deterministic program produce bit-identical
/// snapshots.  The on-disk format reuses the gc-tables varint codec
/// (support/ByteCodec.h — Figure 3 of the paper); decoding is strict:
/// truncation, trailing bytes, or out-of-range indices are errors, never
/// best-effort results.
///
/// Analyses (consumed by tools/mgc-heapsnap): immediate dominators over the
/// object graph from a virtual super-root (iterative Cooper-Harvey-Kennedy
/// over a reverse-postorder numbering — simple and more than fast enough at
/// our heap scales), retained sizes as dominator-subtree sums (the children
/// of the super-root partition the graph, so root-retained sizes sum to the
/// total live bytes — an invariant the tools check), top-N grouping by site
/// and by type, shortest root paths, and per-site growth deltas between two
/// snapshots.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_OBS_HEAPSNAPSHOT_H
#define MGC_OBS_HEAPSNAPSHOT_H

#include "obs/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mgc {
namespace obs {

/// Bumped whenever the encoded format changes; decoders reject other
/// versions outright.  Version 2 added the provenance header (tool
/// version, build flags, seed).
constexpr uint32_t SnapshotVersion = 2;

/// Root.Func value for roots with no containing function (globals; stack
/// roots of threads whose frames were not walked).
constexpr uint32_t NoFunc = 0xFFFFFFFFu;

struct HeapSnapshot {
  //===--- Metadata --------------------------------------------------------===

  std::string Program;
  /// Provenance: which build wrote this file (support/Provenance.h), and
  /// the run's seed (0 when the program takes none).  Capture stamps the
  /// current build; decode restores what the file carries, so analyzers
  /// can refuse to silently compare snapshots from different builds.
  std::string ToolVersion;
  std::string BuildFlags;
  uint64_t Seed = 0;
  bool GenGc = false;
  /// False for post-mortem captures (VM error paths): thread stacks are
  /// not at gc-points, so only globals were enumerated as roots and the
  /// node set underapproximates stack-reachable state.
  bool StacksWalked = true;
  /// VMStats::Collections at capture time.
  uint64_t Collections = 0;
  std::vector<std::string> FuncNames;
  std::vector<std::string> TypeNames; ///< Indexed by Node::Desc.

  struct Site {
    uint32_t Func = 0;
    uint32_t Line = 0;
    uint32_t Col = 0;
    uint32_t Desc = 0;
    bool operator==(const Site &) const = default;
  };
  std::vector<Site> Sites; ///< Indexed by Node::Site (NoSite excepted).

  //===--- The graph -------------------------------------------------------===

  struct Node {
    uint64_t OffsetWords = 0;   ///< Word offset from the space base.
    uint32_t Desc = 0;          ///< Type descriptor index.
    uint32_t Site = NoSite;     ///< Allocation site, or NoSite.
    uint32_t Age = 0;           ///< Collections evacuated through.
    uint32_t ShallowBytes = 0;  ///< Object bytes, header included.
    uint32_t FirstEdge = 0;     ///< Index of the node's first edge.
    uint32_t NumEdges = 0;      ///< Outgoing (non-NIL) pointer fields.
    uint8_t Gen = 0;            ///< 0 = old/two-space, 1 = nursery.
    bool operator==(const Node &) const = default;
  };

  /// One non-NIL pointer field.  Slot is the payload word index within the
  /// source object (the header is word 0, so fixed fields start at 1 and
  /// open-array elements at 2).
  struct Edge {
    uint32_t Slot = 0;
    uint32_t Target = 0; ///< Node id.
    bool operator==(const Edge &) const = default;
  };

  enum class RootKind : uint8_t {
    Global = 0,  ///< Index = global area word.
    FpSlot = 1,  ///< Index = word offset from the frame's FP.
    ApSlot = 2,  ///< Index = word offset from the frame's AP.
    Reg = 3,     ///< Index = register number.
    Derived = 4, ///< A live derived value; Node is its anchor base object.
  };

  struct Root {
    RootKind Kind = RootKind::Global;
    uint32_t Thread = 0;
    uint32_t Frame = 0;      ///< Frame depth, 0 = innermost (stack kinds).
    uint32_t Func = NoFunc;  ///< Containing function (stack kinds).
    int32_t Index = 0;
    uint32_t Node = 0;       ///< The rooted node.
    bool operator==(const Root &) const = default;
  };

  std::vector<Node> Nodes; ///< Id = index; BFS discovery order from Roots.
  std::vector<Edge> Edges; ///< Grouped by source node (CSR layout).
  std::vector<Root> Roots;

  uint64_t totalBytes() const {
    uint64_t B = 0;
    for (const Node &N : Nodes)
      B += N.ShallowBytes;
    return B;
  }

  void clear() { *this = HeapSnapshot(); }
  bool operator==(const HeapSnapshot &) const = default;
};

//===----------------------------------------------------------------------===//
// Codec
//===----------------------------------------------------------------------===//

/// Appends the encoded snapshot to \p Out (magic + version + varint body).
void encodeSnapshot(const HeapSnapshot &S, std::vector<uint8_t> &Out);

/// Strict decode: returns false and sets \p Err on any malformation
/// (bad magic/version, truncation, trailing bytes, index out of range,
/// inconsistent edge grouping).
bool decodeSnapshot(const std::vector<uint8_t> &Blob, HeapSnapshot &S,
                    std::string &Err);

bool writeSnapshotFile(const std::string &Path, const HeapSnapshot &S,
                       std::string &Err);
bool readSnapshotFile(const std::string &Path, HeapSnapshot &S,
                      std::string &Err);

//===----------------------------------------------------------------------===//
// Analysis
//===----------------------------------------------------------------------===//

/// Immediate dominator of node i under a virtual super-root with an edge
/// to every rooted node: a node id, or IdomRoot when the super-root is the
/// immediate dominator (the node's retention is split across roots), or
/// IdomUnreachable for nodes not reachable from any root (impossible in
/// captured snapshots; possible in hand-built graphs).
constexpr int32_t IdomRoot = -1;
constexpr int32_t IdomUnreachable = -2;
std::vector<int32_t> computeIdoms(const HeapSnapshot &S);

/// Retained size per node: the dominator-subtree shallow-byte sum — the
/// bytes that would be freed if the node's last reference dropped.
/// Unreachable nodes retain 0.
std::vector<uint64_t> retainedSizes(const HeapSnapshot &S,
                                    const std::vector<int32_t> &Idom);

//===----------------------------------------------------------------------===//
// Backward reference graph (leak triage)
//===----------------------------------------------------------------------===//

/// Per-node cap on materialized in-edges, in the spirit of bdwgc's
/// backgraph in-edge sampling: hub objects with huge fan-in would
/// otherwise dominate both memory and path enumeration.  Overflow is
/// counted per node, never dropped silently.
constexpr uint32_t BackgraphMaxInPerNode = 32;

/// Height of a node with no root path (impossible in captured snapshots;
/// possible in hand-built graphs).
constexpr uint32_t NoHeight = 0xFFFFFFFFu;

/// The backward view of a snapshot's CSR edges: for each node, its
/// (sampled) in-edges with the referencing slot, plus its height — the
/// shortest hop distance from any rooted node, tracked across collections
/// by diffing consecutive snapshots (watchSnapshots).
struct Backgraph {
  struct InEdge {
    uint32_t Source = 0; ///< Referencing node id.
    uint32_t Slot = 0;   ///< Payload word index within the source.
  };
  /// CSR prefix: node i's in-edges are In[First[i] .. First[i+1]).
  std::vector<uint32_t> First;
  std::vector<InEdge> In;
  /// Shortest hop distance from a rooted node (0 = directly rooted).
  std::vector<uint32_t> Height;
  /// In-edges beyond BackgraphMaxInPerNode, per node.
  std::vector<uint32_t> DroppedIn;
  /// Sampled + dropped; always equals the snapshot's edge count (the
  /// watch-mode crosscheck relies on this conservation).
  uint64_t TotalInEdges = 0;
};

/// Inverts the snapshot's forward CSR edges; deterministic (in-edges are
/// emitted in ascending source-node order) and linear in nodes + edges.
Backgraph buildBackgraph(const HeapSnapshot &S);

/// All retaining paths to \p Node, up to \p MaxPaths, ranked by the
/// dominator weight (retained bytes) of each path's rooted head — the
/// heaviest retainer prints first, so the first path is the one to cut.
/// Enumerated backward over the sampled backgraph with a bounded budget;
/// truncation is reported in the output.  Returns an error line for bad
/// ids.
std::string renderRetainingPaths(const HeapSnapshot &S, uint32_t Node,
                                 size_t MaxPaths);

/// Watch-mode report over a consecutive snapshot stream (the files a
/// `mgc --snapshot-every N` run writes): per-snapshot totals with an
/// internal crosscheck (root-retained bytes must equal live bytes — the
/// same invariant the capture-time re-trace validates — and the backgraph
/// must conserve the edge count), incremental per-site diffs between
/// consecutive snapshots, cumulative first-to-last growth, and
/// retaining-path churn (per-site height / rooted-count / in-edge
/// drift).  \p CrosscheckOk is cleared when any snapshot fails its
/// crosscheck.
std::string watchSnapshots(const std::vector<HeapSnapshot> &Stream,
                           size_t TopN, bool &CrosscheckOk);

/// "func:line:col (TypeName)" for a site id, "(no site)" for NoSite.
std::string siteLabel(const HeapSnapshot &S, uint32_t Site);

/// The full human-readable analysis: totals, root breakdown, top-N by
/// shallow/retained bytes grouped by site and by type, and the age
/// histogram.  Group retained sizes count only group members with no
/// dominating member of the same group, so a group's total never double
/// counts a dominated subtree.
std::string renderSnapshot(const HeapSnapshot &S, size_t TopN);

/// Retaining paths to \p Node: every distinct root path the backgraph
/// enumeration finds (up to a fixed cap), ranked by the retained bytes of
/// each path's rooted head; each path prints the root record's
/// provenance, then each hop with its slot index.  Returns an error line
/// for bad ids.  Equivalent to renderRetainingPaths with the default cap.
std::string renderPathTo(const HeapSnapshot &S, uint32_t Node);

/// Per-site growth from \p Old to \p New: object and shallow-byte deltas,
/// sorted by byte growth, top \p TopN.  Sites are matched by
/// (function name, line, col, type name) so snapshots from different
/// processes of the same program line up.
std::string diffSnapshots(const HeapSnapshot &Old, const HeapSnapshot &New,
                          size_t TopN);

} // namespace obs
} // namespace mgc

#endif // MGC_OBS_HEAPSNAPSHOT_H
