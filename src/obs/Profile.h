//===- obs/Profile.h - GC-map-driven sampling profiler ----------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic sampling profiler built on the paper's central artifact:
/// the compiler-emitted gc-point tables.  The same tables that let the
/// collector walk the stack precisely let the profiler capture exact call
/// stacks *outside* of collections, with no frame pointers, no symbol
/// guessing, and no signal machinery.
///
/// Design:
///
///  - **Sampling at gc-point granularity.**  The sample clock is the
///    retired-instruction counter (VMStats::Instrs), which both dispatch
///    tiers maintain bit-identically.  When the countdown expires, the
///    sample fires at the next *executed* gc-point (NewObj/NewArr/Call/
///    GcPoll/GcCollect) on the executing thread — exactly the places where
///    a collection could fire, so a sampled stack is always table-walkable.
///    Because the ordinal of every gc-point execution is identical across
///    `--dispatch threaded/switch`, `--gc-threads`, and indexed/reference
///    decode, profiles are byte-identical across all of them.
///
///  - **Interned stacks.**  Each thread carries its current stack as an id
///    into a prefix tree of (parent, return-pc) nodes, maintained by O(1)
///    hooks at Call/Ret (the pop restores the parent id from a per-thread
///    shadow stack, so a capped tree still pops correctly).  A sample or
///    allocation interns (node, leaf-pc) into a stack id; aggregation is
///    one vector slot per stack id.  Ids are assigned in first-encounter
///    order over a deterministic execution, keeping the dump canonical.
///
///  - **Verification against the tables.**  Every mutator sample re-walks
///    the frame chain the way the collector does (Stack[FP-1]/[FP-2],
///    funcOfPC on the table pc) and checks it against the incremental
///    chain; each frame's gc-point is then decoded through the same
///    FuncMapIndex + decoded-point cache the collector uses (or the
///    reference decoder), accumulating live root counts.  A mismatch is a
///    counted WalkError — the §6 suite asserts zero.
///
///  - **Two profiles.**  Mutator time: samples weighted by the instruction
///    delta since the previous sample (weights sum to ≤ total instrs).
///    Allocation: *every* NewObj/NewArr attributed to its PR-4 site id and
///    full stack.  Both key by interned stack id; ReqDone() markers close
///    per-request rows for the server-workload harness.
///
/// The dump uses the Figure-3 varint codec with a strict bounds-checked
/// decoder (HeapSnapshot.cpp's discipline); tools/mgc-prof renders top-N
/// self/cumulative tables, folded flamegraph lines, and diffs.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_OBS_PROFILE_H
#define MGC_OBS_PROFILE_H

#include "gcmaps/MapIndex.h"
#include "vm/VM.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace mgc {
namespace obs {

/// Profile file format version ('MGPF' files).
constexpr uint32_t ProfileVersion = 1;

struct ProfilerConfig {
  /// Mutator sampling interval in retired instructions.  The default is
  /// the ≤5%-overhead operating point gated by bench/prof.
  uint64_t IntervalInstrs = 4096;
  /// Armed at attach.  When false the profiler records nothing and the
  /// hooks cost two predicted branches (the bench "disabled" cell).
  bool Enabled = true;
  /// Decode sampled frames through FuncMapIndex + the decoded-point cache
  /// (the collector's accelerated path); false = reference decoder.  The
  /// profile bytes are identical either way — only hit counters differ.
  bool UseMapIndex = true;
  /// Additionally cross-check each sampled frame's indexed decode against
  /// the reference decoder (--gc-crosscheck's discipline); a disagreement
  /// counts as a WalkError.
  bool CrossCheck = false;
  /// Stamped into the profile file's provenance header.
  uint64_t Seed = 0;
  /// Innermost frames kept per interned stack.
  uint32_t MaxFrames = 64;
  /// Caps on the interned prefix tree / stack table: beyond them, deeper
  /// chains stop extending and new stacks aggregate into stack id 0 (the
  /// overflow bucket).  Deterministic: the caps trip at the same event in
  /// every tier.
  uint32_t MaxNodes = 1u << 20;
  uint32_t MaxStacks = 1u << 20;
  /// Per-request rows retained (rows beyond it are dropped and counted).
  uint32_t MaxRequests = 1u << 16;
};

/// A decoded (or built) profile: pure data + codec.  Stack id 0 is the
/// overflow bucket and has no frames; real stacks start at id 1.
struct Profile {
  // Provenance header (support/Provenance.h).  NOT part of the body:
  // profiles must stay byte-identical across command lines that differ
  // only in dispatch tier / gc threads / decode mode.
  std::string ToolVersion;
  std::string BuildFlags;
  uint64_t Seed = 0;

  // Body: everything below is covered by encodeProfileBody.
  std::string Program;
  bool RunOk = true;
  std::string RunError;
  uint64_t IntervalInstrs = 0;
  uint64_t TotalInstrs = 0;
  uint64_t Samples = 0;
  uint64_t SampleWeight = 0;
  uint64_t Allocs = 0;
  uint64_t AllocBytes = 0;
  // Per-sample table-walk aggregates (decoder-independent).
  uint64_t FramesSampled = 0;
  uint64_t LiveSlotsSampled = 0;
  uint64_t LiveRegsSampled = 0;
  uint64_t DerivedSampled = 0;
  uint64_t FramesUnmapped = 0;
  uint64_t WalkErrors = 0;
  uint64_t NodesDropped = 0;
  uint64_t StacksDropped = 0;
  uint64_t RequestsDropped = 0;

  std::vector<std::string> FuncNames;

  struct Site {
    uint32_t Func = 0, Line = 0, Col = 0, Desc = 0;
  };
  std::vector<Site> Sites;

  /// Frame arena; stacks index [FirstFrame, FirstFrame+NumFrames), frames
  /// innermost-first.  RetPC is the gc-map table pc (gc-point + 1); Func
  /// indexes FuncNames.
  struct Frame {
    uint32_t RetPC = 0;
    uint32_t Func = 0;
  };
  std::vector<Frame> Frames;

  struct Stack {
    uint32_t FirstFrame = 0;
    uint32_t NumFrames = 0;
  };
  std::vector<Stack> Stacks;

  struct MutRow {
    uint32_t StackId = 0;
    uint64_t Samples = 0;
    uint64_t Weight = 0; ///< Instruction deltas (virtual time).
  };
  std::vector<MutRow> Mutator; ///< Ascending StackId.

  struct AllocRow {
    uint32_t StackId = 0;
    uint32_t Site = 0; ///< vm::NoAllocSite when unattributed.
    uint64_t Count = 0;
    uint64_t Bytes = 0;
  };
  std::vector<AllocRow> Alloc; ///< Ascending StackId.

  struct Request {
    uint64_t Seq = 0;
    uint64_t Samples = 0;
    uint64_t Weight = 0;
    uint64_t Allocs = 0;
    uint64_t AllocBytes = 0;
  };
  std::vector<Request> Requests; ///< Completion order.

  void clear() { *this = Profile(); }
};

//===----------------------------------------------------------------------===//
// Codec (Figure-3 varints; strict decoder)
//===----------------------------------------------------------------------===//

/// Encodes only the body — the byte-identity contract across tiers /
/// gc-threads / decode modes is over exactly these bytes.
void encodeProfileBody(const Profile &P, std::vector<uint8_t> &Out);

/// Magic + version + provenance header + body.
void encodeProfile(const Profile &P, std::vector<uint8_t> &Out);

/// Strict decode: wrong magic/version, truncation, out-of-range indices,
/// and trailing bytes are all errors.
bool decodeProfile(const std::vector<uint8_t> &Blob, Profile &P,
                   std::string &Err);

bool writeProfileFile(const std::string &Path, const Profile &P,
                      std::string &Err);
bool readProfileFile(const std::string &Path, Profile &P, std::string &Err);

//===----------------------------------------------------------------------===//
// Rendering (tools/mgc-prof, tests)
//===----------------------------------------------------------------------===//

/// Human-readable report: run header, top-N mutator functions by self and
/// cumulative weight, top allocation stacks/sites, request summary.
std::string renderProfile(const Profile &P, size_t TopN);

/// Folded flamegraph lines ("root;f;g weight"), one per stack, for the
/// standard flamegraph toolchain.  \p Alloc selects the allocation profile
/// (weight = bytes) over the mutator profile (weight = instructions).
std::string renderFolded(const Profile &P, bool Alloc);

/// One stack's folded (root-first, semicolon-joined) function path;
/// "[overflow]" for the frameless overflow bucket.
std::string foldedStack(const Profile &P, uint32_t StackId);

/// Mutator-weight diff between two profiles, keyed by folded stack.
std::string renderDiff(const Profile &A, const Profile &B, size_t TopN);

/// Compact digest for the differential fuzz oracle's twin comparison:
/// counts plus an FNV-1a hash of the body bytes.
std::string profileSummary(const Profile &P);

//===----------------------------------------------------------------------===//
// The profiler
//===----------------------------------------------------------------------===//

class Profiler {
public:
  Profiler(const vm::Program &P, ProfilerConfig C);

  bool armed() const { return Cfg.Enabled; }
  const ProfilerConfig &config() const { return Cfg; }

  //===--- VM hooks (hot; called under a Profiler-attached branch) --------===

  /// Every Call retired (gc-point or not), before the frame push: extend
  /// the thread's interned chain; sample first when one is due and this
  /// call is a gc-point.  \p RetPC is the return address (call pc + 1);
  /// callers must have Stats.Instrs and T.PC synced.
  void onCall(vm::VM &M, vm::ThreadContext &T, bool IsGcPoint,
              uint32_t RetPC) {
    if (!Cfg.Enabled)
      return;
    if (IsGcPoint && M.Stats.Instrs >= NextSampleAt)
      takeSample(M, T, RetPC);
    if (T.ProfShadow.size() <= T.ProfDepth)
      T.ProfShadow.resize(T.ProfDepth ? T.ProfDepth * 2 : 16);
    T.ProfShadow[T.ProfDepth++] = T.ProfNode;
    T.ProfNode = pushNode(T.ProfNode, RetPC);
  }

  /// Every Ret retired: restore the caller's chain id.
  void onRet(vm::ThreadContext &T) {
    if (!Cfg.Enabled)
      return;
    T.ProfNode = T.ProfDepth ? T.ProfShadow[--T.ProfDepth] : 0;
  }

  /// A non-allocating gc-point (GcPoll, GcCollect): sample when due.
  void onPoint(vm::VM &M, vm::ThreadContext &T, uint32_t RetPC) {
    if (!Cfg.Enabled)
      return;
    if (M.Stats.Instrs >= NextSampleAt)
      takeSample(M, T, RetPC);
  }

  /// Every NewObj/NewArr, from VM::allocate with counters synced, before
  /// any collection the allocation may trigger.
  void onAlloc(vm::VM &M, vm::ThreadContext &T, uint32_t RetPC,
               uint32_t Site, uint64_t Bytes) {
    if (!Cfg.Enabled)
      return;
    if (M.Stats.Instrs >= NextSampleAt)
      takeSample(M, T, RetPC);
    uint32_t Id = internStack(T.ProfNode, RetPC);
    AllocAgg &A = AllocRows[Id];
    if (A.Count == 0)
      A.Site = Site;
    ++A.Count;
    A.Bytes += Bytes;
    ++TotalAllocs;
    TotalAllocBytes += Bytes;
    ++CurReqAllocs;
    CurReqAllocBytes += Bytes;
  }

  /// A ReqDone() marker retired (VM::finishRequest): close the current
  /// per-request row.
  void onRequestDone(uint64_t Seq);

  //===--- Results ---------------------------------------------------------===

  /// Captures the run outcome (idempotent).  Call after the VM run ends —
  /// including on error paths, where the profile must still be flushed
  /// ("run FAILED; statistics below are partial").
  void finish(bool Ok, const std::string &Error, uint64_t TotalInstrs);

  /// Expands the interned state into a self-contained Profile (stamps the
  /// provenance header).
  Profile buildProfile() const;

  uint64_t sampleCount() const { return TotalSamples; }
  uint64_t sampleWeight() const { return TotalWeight; }
  uint64_t allocCount() const { return TotalAllocs; }
  uint64_t walkErrors() const { return WalkErrors; }
  uint64_t decodeHits() const;
  uint64_t decodeMisses() const;

private:
  struct Node {
    uint32_t Parent = 0;
    uint32_t RetPC = 0;
  };
  struct CacheLine {
    uint64_t Key = ~0ull;
    uint32_t Id = 0;
  };
  struct MutAgg {
    uint64_t Samples = 0;
    uint64_t Weight = 0;
  };
  struct AllocAgg {
    uint64_t Count = 0;
    uint64_t Bytes = 0;
    uint32_t Site = 0;
  };
  struct StackRec {
    uint32_t Node = 0;
    uint32_t LeafPC = 0;
  };
  struct ReqAgg {
    uint64_t Seq = 0;
    uint64_t Samples = 0;
    uint64_t Weight = 0;
    uint64_t Allocs = 0;
    uint64_t AllocBytes = 0;
  };

  static uint64_t key(uint32_t A, uint32_t B) {
    return (static_cast<uint64_t>(A) << 32) | B;
  }
  static size_t slot(uint64_t K, size_t Mask) {
    K ^= K >> 33;
    K *= 0xff51afd7ed558ccdull;
    K ^= K >> 33;
    return static_cast<size_t>(K) & Mask;
  }

  /// Interns the child of \p Parent via \p RetPC.  At the node cap the
  /// chain stops extending (returns \p Parent, counts the drop) — pops
  /// stay correct through the shadow stack.
  uint32_t pushNode(uint32_t Parent, uint32_t RetPC) {
    uint64_t K = key(Parent, RetPC);
    CacheLine &L = NodeCache[slot(K, NodeCacheMask)];
    if (L.Key == K)
      return L.Id;
    return pushNodeSlow(Parent, RetPC, K);
  }

  /// Interns (node, leaf) into a stack id (0 = overflow bucket) and grows
  /// the aggregation rows to cover it.
  uint32_t internStack(uint32_t NodeId, uint32_t LeafPC) {
    uint64_t K = key(NodeId, LeafPC);
    CacheLine &L = StackCache[slot(K, StackCacheMask)];
    if (L.Key == K)
      return L.Id;
    return internStackSlow(NodeId, LeafPC, K);
  }

  uint32_t pushNodeSlow(uint32_t Parent, uint32_t RetPC, uint64_t K);
  uint32_t internStackSlow(uint32_t NodeId, uint32_t LeafPC, uint64_t K);

  /// One mutator sample: weight bookkeeping, stack intern, and the
  /// table-driven verification walk (frame chain + gc-map decode).
  void takeSample(vm::VM &M, vm::ThreadContext &T, uint32_t LeafPC);
  void verifyAndDecode(vm::ThreadContext &T, uint32_t LeafPC);

  const vm::Program &Prog;
  ProfilerConfig Cfg;

  uint64_t NextSampleAt = 0;
  uint64_t LastSampleInstrs = 0;

  std::vector<Node> Nodes;   ///< Id 0 = root (empty stack).
  std::vector<StackRec> Stacks; ///< Id 0 = overflow bucket.
  std::vector<CacheLine> NodeCache, StackCache;
  size_t NodeCacheMask = 0, StackCacheMask = 0;
  std::unordered_map<uint64_t, uint32_t> NodeMap, StackMap;

  std::vector<MutAgg> MutRows;     ///< Indexed by stack id.
  std::vector<AllocAgg> AllocRows; ///< Indexed by stack id.
  std::vector<ReqAgg> Requests;

  uint64_t TotalSamples = 0;
  uint64_t TotalWeight = 0;
  uint64_t TotalAllocs = 0;
  uint64_t TotalAllocBytes = 0;
  uint64_t FramesSampled = 0;
  uint64_t LiveSlotsSampled = 0;
  uint64_t LiveRegsSampled = 0;
  uint64_t DerivedSampled = 0;
  uint64_t FramesUnmapped = 0;
  uint64_t WalkErrors = 0;
  uint64_t NodesDropped = 0;
  uint64_t StacksDropped = 0;
  uint64_t RequestsDropped = 0;

  uint64_t CurReqSamples = 0;
  uint64_t CurReqWeight = 0;
  uint64_t CurReqAllocs = 0;
  uint64_t CurReqAllocBytes = 0;

  // Run outcome (finish()).
  bool Finished = false;
  bool RunOk = true;
  std::string RunError;
  uint64_t TotalInstrs = 0;

  // Decode machinery: the collector's accelerated path, profiler-owned.
  std::unique_ptr<gcmaps::DecodedPointCache> Cache;
  gcmaps::GcPointInfo RefScratch;
  std::vector<uint32_t> WalkScratch;
};

} // namespace obs
} // namespace mgc

#endif // MGC_OBS_PROFILE_H
