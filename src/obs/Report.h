//===- obs/Report.h - Trace file reading and aggregation --------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reads the JSONL trace stream written by obs::Tracer back into structured
/// form and renders the human-readable report (tools/mgc-report).  The
/// parser handles exactly the flat-object subset the tracer emits; any
/// deviation is a parse error, which the round-trip tests require to be
/// zero on every corpus program.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_OBS_REPORT_H
#define MGC_OBS_REPORT_H

#include "obs/Trace.h"

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace mgc {
namespace obs {

/// One parsed JSONL record: flat string->scalar maps.
struct TraceRecord {
  std::string Type;
  std::map<std::string, int64_t> Ints;
  std::map<std::string, std::string> Strs;

  int64_t getInt(const std::string &Key, int64_t Default = 0) const {
    auto It = Ints.find(Key);
    return It == Ints.end() ? Default : It->second;
  }
  std::string getStr(const std::string &Key) const {
    auto It = Strs.find(Key);
    return It == Strs.end() ? std::string() : It->second;
  }
};

/// Parses one JSONL line (a flat JSON object of string/integer values).
/// Returns false and sets \p Err on malformed input.
bool parseTraceLine(const std::string &Line, TraceRecord &Rec,
                    std::string &Err);

/// A fully-read trace file.
struct TraceReport {
  // meta
  std::string Program;
  bool GenGc = false;
  uint64_t SiteTableBytes = 0;

  struct Site {
    uint32_t Id = 0;
    std::string Func;
    uint32_t Line = 0;
    uint32_t Col = 0;
    uint32_t Desc = 0;
    // From the trailing site_stats records (zero when never allocated).
    uint64_t Count = 0;
    uint64_t Bytes = 0;
    uint64_t Survived = 0;
    uint64_t SurvivedBytes = 0;
  };
  std::vector<Site> Sites; ///< Indexed by site id.

  std::vector<GcEvent> Events; ///< Every gc record, in order.

  /// req records: one per server-workload request boundary (ReqDone),
  /// carrying the instructions retired and GC time attributed to that
  /// request. Present only for programs that call ReqDone().
  struct Request {
    uint64_t Seq = 0;
    uint64_t Instrs = 0;
    uint64_t GcNanos = 0;
    uint64_t Collections = 0;
  };
  std::vector<Request> Requests;

  /// Trailing site_live records: objects still live at trace finish,
  /// attributed by allocation site (Id == -1 pools the NoSite objects).
  /// Present only when the tracer ran with persistent attribution.
  struct LiveSite {
    int64_t Id = -1;
    uint64_t Objects = 0;
    uint64_t Bytes = 0;
  };
  std::vector<LiveSite> LiveSites;

  /// Trailing age_hist records: live objects bucketed by the number of
  /// collections they were evacuated through.
  struct AgeBucket {
    uint32_t Age = 0;
    uint64_t Objects = 0;
    uint64_t Bytes = 0;
  };
  std::vector<AgeBucket> AgeHist;

  /// Trailing leak records: allocation sites the online growth detector
  /// flagged (monotone live-byte growth over its sliding window of full
  /// collections).  Present only when the run enabled leak detection.
  struct Leak {
    uint32_t Site = 0;
    int64_t SlopeBytes = 0;     ///< Least-squares slope numerator / window.
    uint64_t LiveBytes = 0;     ///< Live bytes at the newest sample.
    uint64_t FirstFlagged = 0;  ///< Collection ordinal of the first flag.
    uint32_t Window = 0;
  };
  std::vector<Leak> Leaks;

  /// Trailing prof_stack records: the sampling profiler's hottest stacks
  /// by mutator weight (folded root-first form, as `mgc-prof --folded`
  /// renders them).  Present only when the run enabled --profile alongside
  /// --trace; the full profile lives in the binary .prof file.
  struct HotStack {
    uint64_t Rank = 0;
    uint64_t Samples = 0;
    uint64_t Weight = 0; ///< Instructions attributed to this stack.
    std::string Stack;   ///< Semicolon-folded, root first.
  };
  std::vector<HotStack> HotStacks;

  bool HasRun = false; ///< A trailing run record was present.
  bool RunOk = false;
  std::string RunError;
  TraceRecord Run; ///< The raw run record (summary counters).

  size_t LinesRead = 0;
};

/// Reads a whole trace stream.  Returns false on the first parse error
/// (\p Err names the offending line).
bool readTrace(std::istream &In, TraceReport &Report, std::string &Err);

/// Renders the human-readable report: per-phase pause breakdown with
/// percentiles, top sites by bytes and by survival, decode-cache
/// efficiency, and (when present) the suspected-leak table.  \p TopN
/// bounds the site tables.
std::string renderReport(const TraceReport &Report, size_t TopN = 10);

/// Renders only the suspected-leak table (the same section renderReport
/// embeds), or a "no suspected leak sites" line when the trace carries no
/// leak records.  \p TopN bounds the table.
std::string renderLeaks(const TraceReport &Report, size_t TopN = 10);

/// Machine-readable mirror of renderReport: one JSON object covering every
/// rendered section (meta, pause percentiles per kind and phase, volume,
/// workers, requests, site tables, live-at-finish, age histogram, leaks).
/// Tables use the same ordering as the rendered report, so the two views
/// always agree.
std::string renderReportJson(const TraceReport &Report, size_t TopN = 10);

} // namespace obs
} // namespace mgc

#endif // MGC_OBS_REPORT_H
