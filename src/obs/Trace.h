//===- obs/Trace.h - GC event tracing and allocation profiling --*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime observability subsystem: a preallocated ring-buffer event
/// tracer the VM and collector feed, plus per-allocation-site counters
/// keyed by the compiler-emitted site table (gcmaps/SiteTable.h).
///
/// Design constraints:
///
///  - The tracer is always compiled in; when disabled it must cost the
///    mutator a single predicted branch per allocation (the overhead gate
///    in bench/trace_overhead.cpp enforces <1% attached-disabled, <3%
///    enabled on bench/gengc).
///  - The enabled allocation hot path allocates nothing: site counters are
///    a flat preallocated vector indexed by site id, and first-collection
///    survival tracking appends to a preallocated vector of (address,
///    site, bytes) records — bump allocation makes addresses unique
///    between collections, so no hashing is needed.  On overflow records
///    are dropped and counted, never silently.
///  - Collections are rare relative to allocations, so event commit (ring
///    store + optional JSONL stream write) may format text.
///
/// Event lifecycle: the VM begins an event after the rendezvous completes
/// (so committed events correspond 1:1 with VMStats::Collections), the
/// collector fills in the per-phase breakdown and sweeps survivors before
/// the heap swaps spaces, and the VM commits the event with before/after
/// stat deltas once the collector returns.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_OBS_TRACE_H
#define MGC_OBS_TRACE_H

#include "gcmaps/SiteTable.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mgc {
namespace vm {
class Heap;
} // namespace vm
namespace obs {

/// Sentinel site id: no attribution (collections triggered by an explicit
/// GcCollect call, or allocation instructions that predate site linking).
constexpr uint32_t NoSite = 0xFFFFFFFFu;

/// Upper bound on --gc-threads: sizes the fixed per-worker nano arrays in
/// GcEvent so the event stays POD and the ring stays preallocated.
constexpr unsigned MaxGcWorkers = 8;

/// Per-phase nanosecond breakdown of one collection, in pipeline order.
struct PhaseNanos {
  uint64_t Rendezvous = 0;    ///< §5.3 thread rendezvous (VM side).
  uint64_t StackTrace = 0;    ///< Table locate + decode + root gathering.
  uint64_t Underive = 0;      ///< §3 phase 1: subtract base values.
  uint64_t Copy = 0;          ///< Cheney evacuation and scan.
  uint64_t RemsetRebuild = 0; ///< Minor only: surviving-entry sweep + swap.
  uint64_t Rederive = 0;      ///< §3 phase 2: re-add new base values.
};

/// One collection, as recorded in the ring / JSONL stream.
struct GcEvent {
  uint64_t Seq = 0;   ///< 1-based; equals VMStats::Collections at commit.
  bool Minor = false; ///< Minor (nursery-only) vs full collection.
  /// Allocation site whose NEW triggered this collection (NoSite for
  /// explicit GcCollect requests).
  uint32_t TriggerSite = NoSite;
  PhaseNanos Phases;
  uint64_t TotalNanos = 0; ///< Rendezvous + collector time.
  uint64_t HeapBeforeBytes = 0;
  uint64_t HeapAfterBytes = 0;
  // Deltas over this collection.
  uint64_t FramesTraced = 0;
  uint64_t RootsTraced = 0;
  uint64_t ObjectsCopied = 0;
  uint64_t BytesCopied = 0;
  uint64_t ObjectsPromoted = 0;
  uint64_t BytesPromoted = 0;
  uint64_t DerivedAdjusted = 0;
  uint64_t RendezvousSteps = 0;
  uint64_t CacheHits = 0;   ///< Decoded-point cache hits this collection.
  uint64_t CacheMisses = 0; ///< Decoded-point cache misses this collection.
  /// GC worker threads that performed this collection (1 = serial).  The
  /// per-worker arrays below are valid for indices [0, Workers).
  uint32_t Workers = 1;
  /// Per-worker stack-walk (root gathering) nanos.  For the serial
  /// collector worker 0 carries the whole StackTrace phase.
  uint64_t WorkerTraceNanos[MaxGcWorkers] = {};
  /// Per-worker evacuation (forward + scan, including steal idle) nanos.
  /// For the serial collector worker 0 carries the whole Copy phase.
  uint64_t WorkerCopyNanos[MaxGcWorkers] = {};
};

/// Cumulative counters for one allocation site.
struct SiteCounters {
  uint64_t Count = 0;         ///< Allocations attributed to the site.
  uint64_t Bytes = 0;         ///< Bytes allocated (header included).
  uint64_t Survived = 0;      ///< Allocations that survived their first gc.
  uint64_t SurvivedBytes = 0;
};

/// One (objects, bytes) aggregate of the heap's per-object attribution —
/// per site for liveBySite(), per age for ageHistogram().  The attribution
/// itself lives in each object's header (vm/Heap.h: site id and
/// evacuation-count age ride the header through every copy), so there is
/// no side table to maintain; these aggregates are computed by walking the
/// heap on demand.
struct LiveAgg {
  uint64_t Objects = 0;
  uint64_t Bytes = 0;
};

/// Online growth-detector configuration (leak triage).  When enabled the
/// collector calls Tracer::sampleCollection at the tail of every pause;
/// the detector keeps a sliding window of per-site live-bytes samples
/// (full collections only — minor collections never reclaim old space, so
/// per-site "live" ramps monotonically between fulls and would flag every
/// site) and flags sites whose window shows sustained growth.  All state
/// is preallocated in the tracer constructor; sampling allocates nothing.
struct LeakConfig {
  bool Enabled = false;
  /// Sliding window length in full-collection samples.  A leaking site is
  /// flagged once its window fills with non-decreasing, net-growing
  /// samples, so Window is also K: the detection-latency bound in full
  /// collections.
  uint32_t Window = 8;
  /// Minimum live bytes at the newest sample before a site can be
  /// flagged; filters sites too small to matter.
  uint64_t MinBytes = 4096;
};

/// Static configuration captured when the tracer is attached to a VM.
struct TracerConfig {
  /// The program's allocation-site table; may be null (counters off).
  const gcmaps::SiteTable *Sites = nullptr;
  /// Function names, indexed by AllocSite::Func (for JSONL site records).
  std::vector<std::string> FuncNames;
  std::string ProgramName;
  /// Active dispatch tier name ("threaded"/"switch"); empty = unreported.
  /// Self-describes benchmark artifacts; tiers are observably identical.
  std::string Dispatch;
  bool GenGc = false;
  size_t SiteTableBytes = 0;
  /// RNG seed of the run (0 when the program takes none); stamped into the
  /// meta record alongside tool version and build flags so artifacts are
  /// self-describing and reproducible.
  uint64_t Seed = 0;
  size_t RingCapacity = 1024;
  /// Capacity of the first-collection survival buffer: allocations between
  /// consecutive collections beyond this are dropped (and counted).
  size_t PendingCapacity = 1u << 15;
  /// Capacity of the per-request service-demand sample buffer (ReqDone
  /// markers); samples beyond it are dropped (and counted), the running
  /// aggregates keep counting.
  size_t RequestCapacity = 1u << 18;
  /// Report per-object attribution: emit the live-by-site and age-histogram
  /// trailer records at finish() and the live_*_by_site fields in
  /// --stats-json.  The attribution data itself is header-borne (vm/Heap.h)
  /// and always present; this flag only adds the O(live objects) heap walk
  /// at reporting time.  Collection-time maintenance is the header age
  /// bump inside the existing copy — bench/snapshot_overhead gates the
  /// flag's collection-time delta ≤2% (measured ≈0).
  bool Attribution = false;
  /// Online leak detection (see LeakConfig).  bench/leak gates the cost:
  /// ≤1% with the detector off, ≤3% with it on.
  LeakConfig Leak;
};

class Tracer {
public:
  explicit Tracer(TracerConfig Config);

  //===--- Control ---------------------------------------------------------===

  /// Enables recording.  \p Stream, when non-null, receives the JSONL
  /// trace: meta + site records immediately, one gc record per committed
  /// event, and site_stats + run records at finish().  The stream must
  /// outlive the tracer or a finish() call.
  void enable(std::ostream *Stream);
  bool enabled() const { return Enabled; }

  /// Writes the trailing site_stats and run records (idempotent; no-op
  /// without a stream).  Call after the VM run ends — including on error
  /// paths, where \p Error carries the VM's message: a mid-collection
  /// failure must still flush the partial trace.  \p H, when non-null and
  /// Config.Attribution is set, supplies the heap walked for the site_live
  /// and age_hist trailer records.
  void finish(bool Ok, const std::string &Error,
              const vm::Heap *H = nullptr);

  //===--- Mutator hot path ------------------------------------------------===

  /// Records one allocation.  \p Movable is false for allocations the next
  /// collection will not move (direct-to-old in generational mode); those
  /// never enter the first-collection survival sweep.
  void recordAlloc(uint32_t Site, uint64_t Addr, uint64_t Bytes,
                   bool Movable) {
    if (!Enabled)
      return;
    bool Counted = Site < Counters.size();
    if (Counted) {
      ++Counters[Site].Count;
      Counters[Site].Bytes += Bytes;
    } else {
      // Unattributed allocations (no site table, or instructions predating
      // site linking) skip the per-site counters; snapshots still see them
      // via the NoSite id carried in the object header.
      ++UnattributedCount;
      UnattributedBytes += Bytes;
    }
    if (Counted && Movable) {
      if (Pending.size() < Config.PendingCapacity)
        Pending.push_back({Addr, Site, Bytes});
      else
        ++DroppedPending;
    }
  }

  /// Records one completed request (a ReqDone marker): \p Instrs is the
  /// virtual-time service demand (instructions retired since the previous
  /// marker), \p GcNanos and \p Collections the collection work the VM
  /// attributed to that window.  Request granularity is coarse relative to
  /// allocation, so this may append to the (preallocated) sample buffer
  /// and write a JSONL record.
  void recordRequest(uint64_t Seq, uint64_t Instrs, uint64_t GcNanos,
                     uint64_t Collections);

  //===--- Collection lifecycle (VM / collector) ---------------------------===

  /// Begins event \p Seq.  Returns the event for the collector to fill;
  /// valid until commitEvent().
  GcEvent &beginEvent(uint64_t Seq, bool Minor, uint32_t TriggerSite);

  /// The in-flight event, or null when none (tracer disabled, or no
  /// collection running).  The collector writes phase timings through this.
  GcEvent *current() { return CurActive ? &Cur : nullptr; }

  /// Resolves first-collection survival: called by the collector after the
  /// evacuation completes but *before* the heap swaps spaces, while
  /// from-space headers are still readable.  An object survived iff its
  /// header carries the forwarding tag (bit 0 — vm/Heap.h's ForwardBit;
  /// Collector.cpp static_asserts the correspondence).  Per-object
  /// site/age attribution needs no sweep at all: it rides in the header
  /// through the copy itself.
  void sweepSurvivors(const vm::Heap &H, bool Minor);

  /// Commits the in-flight event: ring store, pause bookkeeping, and JSONL
  /// stream write.
  void commitEvent();

  /// Leak-detector hook: called by the collector at the tail of every
  /// pause (workers joined, single-threaded).  Minor collections only
  /// count a scan; full collections merge the per-worker in-copy
  /// accumulators (leakAccumulator) into one live-bytes sample per site,
  /// push it into the sliding window, and re-evaluate the flags — the
  /// post-collection live set is exactly what the collection copied, so
  /// no separate heap walk is needed.  \p Collections is
  /// VMStats::Collections at the sample (recorded as the flag time).
  /// No-op unless the tracer is enabled and Config.Leak.Enabled is set.
  void sampleCollection(uint64_t Collections, bool Minor);

  /// Per-worker slab for the in-copy leak sampling: during a FULL
  /// collection the collector adds each object's bytes to slot [site id]
  /// of the copying worker's slab as it evacuates the object, and
  /// sampleCollection merges + zeroes the slabs after the workers join.
  /// Returns null (the collector skips the add) unless the tracer is
  /// enabled with the detector configured.  Minor collections must not
  /// accumulate: only the full-collection copy loops wire these in.
  uint64_t *leakAccumulator(unsigned Worker) {
    if (!Enabled || LeakScratch.empty() || Worker >= MaxGcWorkers)
      return nullptr;
    return &LeakWorkerAcc[size_t(Worker) * LeakScratch.size()];
  }
  /// Slots per leakAccumulator slab; site ids at or past this bound are
  /// unattributed and must not be added.
  size_t leakSiteCount() const { return LeakScratch.size(); }

  //===--- Results ---------------------------------------------------------===

  const TracerConfig &config() const { return Config; }
  const std::vector<SiteCounters> &siteCounters() const { return Counters; }
  uint64_t unattributedCount() const { return UnattributedCount; }
  uint64_t unattributedBytes() const { return UnattributedBytes; }
  uint64_t droppedPending() const { return DroppedPending; }

  /// Committed events, oldest first (at most RingCapacity retained; the
  /// stream, when attached, saw every event).
  uint64_t eventCount() const { return TotalEvents; }
  /// The most recently committed event, or null when none yet.  Valid until
  /// the next commitEvent() overwrites its ring slot; pause harnesses (e.g.
  /// bench/pause) read TotalNanos out of it from the VM's PostGcHook.
  const GcEvent *lastCommitted() const {
    return TotalEvents ? &Ring[(TotalEvents - 1) % Ring.size()] : nullptr;
  }
  uint64_t eventsDropped() const {
    return TotalEvents > Ring.size() ? TotalEvents - Ring.size() : 0;
  }
  std::vector<GcEvent> retainedEvents() const;

  struct Percentiles {
    uint64_t P50 = 0, P95 = 0, P99 = 0, Max = 0;
    uint64_t Count = 0;
  };
  /// Pause percentiles over every committed event (not just the retained
  /// ring).  Kind: 0 = all, 1 = minor only, 2 = full only.
  Percentiles pausePercentiles(int Kind = 0) const;

  //===--- Request aggregation (server workloads) --------------------------===

  uint64_t requestCount() const { return ReqCount; }
  /// Sum of per-request GC attribution: equals the sum of TotalNanos over
  /// the events inside completed request windows (the tail after the last
  /// marker is unattributed).
  uint64_t requestGcNanos() const { return ReqGcNanosTotal; }
  uint64_t requestCollections() const { return ReqCollectionsTotal; }
  uint64_t droppedRequests() const { return DroppedRequests; }
  /// Per-request service demand in instructions, in completion order (at
  /// most Config.RequestCapacity retained).
  const std::vector<uint64_t> &requestInstrSamples() const {
    return ReqInstrs;
  }
  /// Service-demand percentiles (instructions) over the retained samples.
  Percentiles requestPercentiles() const;

  /// The aggregate counters as one JSON object body (no surrounding
  /// braces), for embedding in --stats-json.
  std::string summaryJsonFields() const;

  //===--- Leak detection results ------------------------------------------===

  /// One suspected-leak site: its window filled with non-decreasing,
  /// net-growing live-bytes samples while the newest sample was at least
  /// Config.Leak.MinBytes.
  struct LeakFlag {
    uint32_t Site = 0;
    /// Integer least-squares slope of the window, in bytes per full
    /// collection (positive by construction for a flagged site).
    int64_t SlopeBytes = 0;
    uint64_t LiveBytes = 0;     ///< Live bytes at the newest sample.
    uint64_t FirstFlagged = 0;  ///< VMStats::Collections at the first flag.
  };
  /// Currently flagged sites, sorted by (slope desc, site id asc): the
  /// inputs are per-site integer sums accumulated as objects are copied —
  /// sums are order- and partition-independent, so the result is
  /// byte-identical across --gc-threads and dispatch tiers.
  std::vector<LeakFlag> leakFlags() const;
  uint64_t leakScans() const { return LeakScans; }
  uint64_t leakSamples() const { return LeakSampleCount; }
  /// The detector state as JSON object fields ("leak_window":N,
  /// "leak_flags":[{...},...]) for --stats-json.  NOT part of
  /// summaryJsonFields: the flag list is nested, which the strict flat
  /// JSONL re-parser must never see in a run record (each flag instead
  /// gets its own flat "leak" record at finish()).
  std::string leakJsonFields() const;

  //===--- Live attribution aggregates (header-borne; heap walks) ----------===

  /// (objects, bytes) per site id over a walk of \p H's allocated regions,
  /// reading each object's header-borne site; NoSiteHdr objects (and site
  /// ids past the linked table) aggregate into \p NoSiteAgg.  "Live" means:
  /// allocated and not yet reclaimed by a collection that covered the
  /// object's space — old-space objects dead since the last *full*
  /// collection are still counted (snapshots are exact, this is not).
  /// Must not be called mid-collection.
  std::vector<LiveAgg> liveBySite(const vm::Heap &H,
                                  LiveAgg &NoSiteAgg) const;

  /// (objects, bytes) per header-borne evacuation-count age over the same
  /// walk; index = age, trailing empty buckets trimmed.
  std::vector<LiveAgg> ageHistogram(const vm::Heap &H) const;

  /// The liveBySite/ageHistogram aggregates as JSON object fields
  /// ("live_objects_by_site":{...},"live_bytes_by_site":{...},
  /// "live_age_hist":{...}), for --stats-json.  NOT part of
  /// summaryJsonFields: the values are nested objects, which the strict
  /// flat JSONL re-parser (obs/Report.h) must never see in a run record.
  std::string liveJsonFields(const vm::Heap &H) const;

private:
  void writeHeader();
  void writeEvent(const GcEvent &Ev);

  TracerConfig Config;
  bool Enabled = false;
  std::ostream *Stream = nullptr;
  bool Finished = false;

  std::vector<SiteCounters> Counters; ///< Indexed by site id.
  uint64_t UnattributedCount = 0;
  uint64_t UnattributedBytes = 0;

  struct PendingAlloc {
    uint64_t Addr;
    uint32_t Site;
    uint64_t Bytes;
  };
  std::vector<PendingAlloc> Pending; ///< Preallocated; cleared each sweep.
  uint64_t DroppedPending = 0;

  GcEvent Cur;
  bool CurActive = false;

  std::vector<GcEvent> Ring; ///< Preallocated; slot = (Seq-1) % capacity.
  uint64_t TotalEvents = 0;

  std::vector<uint64_t> PausesMinor; ///< TotalNanos of every minor event.
  std::vector<uint64_t> PausesFull;  ///< TotalNanos of every full event.

  std::vector<uint64_t> ReqInstrs; ///< Per-request service demand samples.
  uint64_t ReqCount = 0;
  uint64_t ReqGcNanosTotal = 0;
  uint64_t ReqCollectionsTotal = 0;
  uint64_t DroppedRequests = 0;

  // Leak detector (preallocated in the constructor when Config.Leak is
  // enabled and a site table exists; empty otherwise).
  std::vector<uint64_t> LeakRing;    ///< Site-major: [site * Window + slot].
  std::vector<uint64_t> LeakScratch; ///< Merged per-site bytes, one sample.
  /// MaxGcWorkers contiguous per-site slabs ([worker * NSites + site]) the
  /// collector's full-collection copy loops fill via leakAccumulator();
  /// consumed (merged + zeroed) by sampleCollection.
  std::vector<uint64_t> LeakWorkerAcc;
  std::vector<uint64_t> LeakFirst;   ///< Collections at first flag; 0 = never.
  uint64_t LeakSampleCount = 0;      ///< Full-collection samples taken.
  uint64_t LeakScans = 0;            ///< sampleCollection calls (any kind).
};

/// Appends one JSON string literal (quoted, escaped) to \p Out.
void appendJsonString(std::string &Out, const std::string &S);

} // namespace obs
} // namespace mgc

#endif // MGC_OBS_TRACE_H
