//===- obs/Profile.cpp ----------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Profile.h"

#include "gcmaps/GcTables.h"
#include "support/ByteCodec.h"
#include "support/Provenance.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <map>

using namespace mgc;
using namespace mgc::obs;

//===----------------------------------------------------------------------===//
// Profiler: interning
//===----------------------------------------------------------------------===//

Profiler::Profiler(const vm::Program &P, ProfilerConfig C)
    : Prog(P), Cfg(C) {
  if (Cfg.IntervalInstrs == 0)
    Cfg.IntervalInstrs = 1;
  NextSampleAt = Cfg.IntervalInstrs;
  Nodes.push_back(Node());     // Id 0: root (empty chain).
  Stacks.push_back(StackRec()); // Id 0: overflow bucket.
  MutRows.resize(1);
  AllocRows.resize(1);
  NodeCache.resize(1u << 14);
  StackCache.resize(1u << 13);
  NodeCacheMask = NodeCache.size() - 1;
  StackCacheMask = StackCache.size() - 1;
  if (Cfg.UseMapIndex)
    Cache = std::make_unique<gcmaps::DecodedPointCache>(128);
}

uint32_t Profiler::pushNodeSlow(uint32_t Parent, uint32_t RetPC, uint64_t K) {
  auto It = NodeMap.find(K);
  if (It != NodeMap.end()) {
    NodeCache[slot(K, NodeCacheMask)] = {K, It->second};
    return It->second;
  }
  if (Nodes.size() >= Cfg.MaxNodes) {
    // Chain stops extending; pops stay correct through the shadow stack.
    ++NodesDropped;
    return Parent;
  }
  uint32_t Id = static_cast<uint32_t>(Nodes.size());
  Nodes.push_back({Parent, RetPC});
  NodeMap.emplace(K, Id);
  NodeCache[slot(K, NodeCacheMask)] = {K, Id};
  return Id;
}

uint32_t Profiler::internStackSlow(uint32_t NodeId, uint32_t LeafPC,
                                   uint64_t K) {
  auto It = StackMap.find(K);
  if (It != StackMap.end()) {
    StackCache[slot(K, StackCacheMask)] = {K, It->second};
    return It->second;
  }
  if (Stacks.size() >= Cfg.MaxStacks) {
    ++StacksDropped;
    return 0;
  }
  uint32_t Id = static_cast<uint32_t>(Stacks.size());
  Stacks.push_back({NodeId, LeafPC});
  MutRows.resize(Stacks.size());
  AllocRows.resize(Stacks.size());
  StackMap.emplace(K, Id);
  StackCache[slot(K, StackCacheMask)] = {K, Id};
  return Id;
}

//===----------------------------------------------------------------------===//
// Profiler: sampling
//===----------------------------------------------------------------------===//

void Profiler::takeSample(vm::VM &M, vm::ThreadContext &T, uint32_t LeafPC) {
  uint64_t Now = M.Stats.Instrs;
  uint64_t Weight = Now - LastSampleInstrs;
  LastSampleInstrs = Now;
  NextSampleAt = Now + Cfg.IntervalInstrs;

  uint32_t Id = internStack(T.ProfNode, LeafPC);
  MutAgg &Row = MutRows[Id];
  ++Row.Samples;
  Row.Weight += Weight;
  ++TotalSamples;
  TotalWeight += Weight;
  ++CurReqSamples;
  CurReqWeight += Weight;

  verifyAndDecode(T, LeafPC);
}

void Profiler::verifyAndDecode(vm::ThreadContext &T, uint32_t LeafPC) {
  // Phase 1+2 of the collector's walk (gc/Cheney's discipline): the leaf
  // table pc, then the Stack[FP-1]/Stack[FP-2] chain to the root sentinel.
  // Collect the caller ret pcs for the incremental-chain check and decode
  // every frame's gc-point through the same machinery collections use.
  WalkScratch.clear();
  bool WalkBad = false;
  uint32_t FP = T.FP;
  uint32_t TablePC = LeafPC;
  for (;;) {
    // Phase 3: decode this frame's tables and charge its live roots.
    unsigned Func = Prog.funcOfPC(TablePC - 1);
    const gcmaps::EncodedFuncMaps &Maps = Prog.Maps[Func];
    int Ordinal = gcmaps::findGcPoint(Maps, TablePC);
    if (Ordinal < 0) {
      // Possible by design: a poll inside a function whose calls are all
      // NoGcCallee gets no table entry of its own in outer frames.
      ++FramesUnmapped;
    } else {
      const gcmaps::GcPointInfo *Info = nullptr;
      if (Cache && !Prog.MapIndexes.empty()) {
        Info = Cache->lookup(Func, static_cast<uint32_t>(Ordinal));
        if (!Info) {
          gcmaps::GcPointInfo &Slot =
              Cache->insert(Func, static_cast<uint32_t>(Ordinal));
          gcmaps::decodeGcPointIndexed(Maps, Prog.MapIndexes[Func],
                                       static_cast<unsigned>(Ordinal), Slot);
          Info = &Slot;
        }
        if (Cfg.CrossCheck &&
            !gcmaps::crossCheckPoint(Maps, Prog.MapIndexes[Func],
                                     static_cast<unsigned>(Ordinal)))
          WalkBad = true;
      } else {
        RefScratch = gcmaps::decodeGcPoint(Maps, static_cast<unsigned>(Ordinal));
        Info = &RefScratch;
      }
      ++FramesSampled;
      LiveSlotsSampled += Info->LiveSlots.size();
      LiveRegsSampled += std::popcount(static_cast<unsigned>(Info->RegMask));
      DerivedSampled += Info->Derivs.size();
    }

    if (FP < vm::CtlWords || FP > T.StackWords) {
      WalkBad = true;
      break;
    }
    uint32_t Ret = static_cast<uint32_t>(T.Stack[FP - 1]);
    if (Ret == vm::SentinelRetPC)
      break;
    WalkScratch.push_back(Ret);
    TablePC = Ret;
    FP = static_cast<uint32_t>(T.Stack[FP - 2]);
  }

  // Check the incremental chain against the walked chain, innermost-first.
  // A capped tree legitimately under-records depth; any other discrepancy
  // is a bug in the hooks (or the tables) and is counted.
  uint32_t NodeId = T.ProfNode;
  size_t I = 0;
  for (; NodeId != 0 && I != WalkScratch.size(); ++I) {
    const Node &N = Nodes[NodeId];
    if (N.RetPC != WalkScratch[I]) {
      WalkBad = true;
      break;
    }
    NodeId = N.Parent;
  }
  if (!WalkBad && NodeId != 0)
    WalkBad = true; // Chain deeper than the real stack: always a bug.
  if (!WalkBad && I != WalkScratch.size() && NodesDropped == 0)
    WalkBad = true; // Chain shallower without a cap in effect: a bug.
  if (WalkBad)
    ++WalkErrors;
}

void Profiler::onRequestDone(uint64_t Seq) {
  if (!Cfg.Enabled)
    return;
  if (Requests.size() >= Cfg.MaxRequests) {
    ++RequestsDropped;
  } else {
    Requests.push_back(
        {Seq, CurReqSamples, CurReqWeight, CurReqAllocs, CurReqAllocBytes});
  }
  CurReqSamples = CurReqWeight = CurReqAllocs = CurReqAllocBytes = 0;
}

void Profiler::finish(bool Ok, const std::string &Error, uint64_t Instrs) {
  if (Finished)
    return;
  Finished = true;
  RunOk = Ok;
  RunError = Error;
  TotalInstrs = Instrs;
}

uint64_t Profiler::decodeHits() const { return Cache ? Cache->hits() : 0; }
uint64_t Profiler::decodeMisses() const { return Cache ? Cache->misses() : 0; }

//===----------------------------------------------------------------------===//
// Profiler: profile construction
//===----------------------------------------------------------------------===//

Profile Profiler::buildProfile() const {
  Profile P;
  P.ToolVersion = support::ToolVersion;
  P.BuildFlags = support::buildFlags();
  P.Seed = Cfg.Seed;

  P.Program = Prog.Name;
  P.RunOk = RunOk;
  P.RunError = RunError;
  P.IntervalInstrs = Cfg.IntervalInstrs;
  P.TotalInstrs = TotalInstrs;
  P.Samples = TotalSamples;
  P.SampleWeight = TotalWeight;
  P.Allocs = TotalAllocs;
  P.AllocBytes = TotalAllocBytes;
  P.FramesSampled = FramesSampled;
  P.LiveSlotsSampled = LiveSlotsSampled;
  P.LiveRegsSampled = LiveRegsSampled;
  P.DerivedSampled = DerivedSampled;
  P.FramesUnmapped = FramesUnmapped;
  P.WalkErrors = WalkErrors;
  P.NodesDropped = NodesDropped;
  P.StacksDropped = StacksDropped;
  P.RequestsDropped = RequestsDropped;

  P.FuncNames.reserve(Prog.Funcs.size());
  for (const vm::CompiledFunction &F : Prog.Funcs)
    P.FuncNames.push_back(F.Name);
  P.Sites.reserve(Prog.SiteTab.Sites.size());
  for (const gcmaps::AllocSite &S : Prog.SiteTab.Sites)
    P.Sites.push_back({S.Func, S.Line, S.Col, S.Desc});

  // Expand every interned stack (each was interned by a sample or an
  // allocation, so none is unused).  Frames innermost-first, truncated to
  // the innermost MaxFrames — the truncation point is a deterministic
  // function of the interned chain, preserving cross-tier identity.
  P.Stacks.reserve(Stacks.size());
  P.Stacks.push_back(Profile::Stack()); // Id 0: overflow, no frames.
  for (size_t Id = 1; Id < Stacks.size(); ++Id) {
    Profile::Stack St;
    St.FirstFrame = static_cast<uint32_t>(P.Frames.size());
    uint32_t LeafPC = Stacks[Id].LeafPC;
    P.Frames.push_back(
        {LeafPC, static_cast<uint32_t>(Prog.funcOfPC(LeafPC - 1))});
    uint32_t N = 1;
    for (uint32_t NodeId = Stacks[Id].Node; NodeId != 0 && N < Cfg.MaxFrames;
         NodeId = Nodes[NodeId].Parent, ++N) {
      uint32_t PC = Nodes[NodeId].RetPC;
      P.Frames.push_back({PC, static_cast<uint32_t>(Prog.funcOfPC(PC - 1))});
    }
    St.NumFrames = N;
    P.Stacks.push_back(St);
  }

  for (size_t Id = 0; Id < MutRows.size(); ++Id)
    if (MutRows[Id].Samples)
      P.Mutator.push_back({static_cast<uint32_t>(Id), MutRows[Id].Samples,
                           MutRows[Id].Weight});
  for (size_t Id = 0; Id < AllocRows.size(); ++Id)
    if (AllocRows[Id].Count)
      P.Alloc.push_back({static_cast<uint32_t>(Id), AllocRows[Id].Site,
                         AllocRows[Id].Count, AllocRows[Id].Bytes});

  P.Requests.reserve(Requests.size());
  for (const ReqAgg &R : Requests)
    P.Requests.push_back({R.Seq, R.Samples, R.Weight, R.Allocs, R.AllocBytes});
  return P;
}

//===----------------------------------------------------------------------===//
// Codec
//===----------------------------------------------------------------------===//

namespace {
const char ProfMagic[4] = {'M', 'G', 'P', 'F'};
} // namespace

void obs::encodeProfileBody(const Profile &P, std::vector<uint8_t> &Out) {
  appendPackedStr(Out, P.Program);
  Out.push_back(P.RunOk ? 1 : 0);
  appendPackedStr(Out, P.RunError);
  appendPackedU64(Out, P.IntervalInstrs);
  appendPackedU64(Out, P.TotalInstrs);
  appendPackedU64(Out, P.Samples);
  appendPackedU64(Out, P.SampleWeight);
  appendPackedU64(Out, P.Allocs);
  appendPackedU64(Out, P.AllocBytes);
  appendPackedU64(Out, P.FramesSampled);
  appendPackedU64(Out, P.LiveSlotsSampled);
  appendPackedU64(Out, P.LiveRegsSampled);
  appendPackedU64(Out, P.DerivedSampled);
  appendPackedU64(Out, P.FramesUnmapped);
  appendPackedU64(Out, P.WalkErrors);
  appendPackedU64(Out, P.NodesDropped);
  appendPackedU64(Out, P.StacksDropped);
  appendPackedU64(Out, P.RequestsDropped);

  appendPackedU32(Out, static_cast<uint32_t>(P.FuncNames.size()));
  for (const std::string &F : P.FuncNames)
    appendPackedStr(Out, F);
  appendPackedU32(Out, static_cast<uint32_t>(P.Sites.size()));
  for (const Profile::Site &S : P.Sites) {
    appendPackedU32(Out, S.Func);
    appendPackedU32(Out, S.Line);
    appendPackedU32(Out, S.Col);
    appendPackedU32(Out, S.Desc);
  }
  appendPackedU32(Out, static_cast<uint32_t>(P.Frames.size()));
  for (const Profile::Frame &F : P.Frames) {
    appendPackedU32(Out, F.RetPC);
    appendPackedU32(Out, F.Func);
  }
  appendPackedU32(Out, static_cast<uint32_t>(P.Stacks.size()));
  for (const Profile::Stack &S : P.Stacks) {
    appendPackedU32(Out, S.FirstFrame);
    appendPackedU32(Out, S.NumFrames);
  }
  appendPackedU32(Out, static_cast<uint32_t>(P.Mutator.size()));
  for (const Profile::MutRow &R : P.Mutator) {
    appendPackedU32(Out, R.StackId);
    appendPackedU64(Out, R.Samples);
    appendPackedU64(Out, R.Weight);
  }
  appendPackedU32(Out, static_cast<uint32_t>(P.Alloc.size()));
  for (const Profile::AllocRow &R : P.Alloc) {
    appendPackedU32(Out, R.StackId);
    appendPackedU32(Out, R.Site);
    appendPackedU64(Out, R.Count);
    appendPackedU64(Out, R.Bytes);
  }
  appendPackedU32(Out, static_cast<uint32_t>(P.Requests.size()));
  for (const Profile::Request &R : P.Requests) {
    appendPackedU64(Out, R.Seq);
    appendPackedU64(Out, R.Samples);
    appendPackedU64(Out, R.Weight);
    appendPackedU64(Out, R.Allocs);
    appendPackedU64(Out, R.AllocBytes);
  }
}

void obs::encodeProfile(const Profile &P, std::vector<uint8_t> &Out) {
  Out.insert(Out.end(), ProfMagic, ProfMagic + 4);
  appendPackedU32(Out, ProfileVersion);
  appendPackedStr(Out, P.ToolVersion);
  appendPackedStr(Out, P.BuildFlags);
  appendPackedU64(Out, P.Seed);
  encodeProfileBody(P, Out);
}

bool obs::decodeProfile(const std::vector<uint8_t> &Blob, Profile &P,
                        std::string &Err) {
  P.clear();
  auto Bad = [&](const char *Msg) {
    Err = std::string("profile decode: ") + Msg;
    P.clear();
    return false;
  };

  SafeReader R(Blob);
  for (char M : ProfMagic)
    if (R.byte() != static_cast<uint8_t>(M))
      return Bad("bad magic (not a profile)");
  uint32_t Version = R.u32();
  if (R.failed())
    return Bad("truncated header");
  if (Version != ProfileVersion)
    return Bad("unsupported profile version");

  P.ToolVersion = R.str();
  P.BuildFlags = R.str();
  P.Seed = R.u64();

  P.Program = R.str();
  P.RunOk = R.byte() != 0;
  P.RunError = R.str();
  P.IntervalInstrs = R.u64();
  P.TotalInstrs = R.u64();
  P.Samples = R.u64();
  P.SampleWeight = R.u64();
  P.Allocs = R.u64();
  P.AllocBytes = R.u64();
  P.FramesSampled = R.u64();
  P.LiveSlotsSampled = R.u64();
  P.LiveRegsSampled = R.u64();
  P.DerivedSampled = R.u64();
  P.FramesUnmapped = R.u64();
  P.WalkErrors = R.u64();
  P.NodesDropped = R.u64();
  P.StacksDropped = R.u64();
  P.RequestsDropped = R.u64();
  if (R.failed())
    return Bad("truncated counters");

  uint32_t NFuncs = R.u32();
  if (!R.countOk(NFuncs))
    return Bad("bad function-name count");
  P.FuncNames.reserve(NFuncs);
  for (uint32_t I = 0; I != NFuncs; ++I)
    P.FuncNames.push_back(R.str());
  uint32_t NSites = R.u32();
  if (!R.countOk(NSites))
    return Bad("bad site count");
  P.Sites.reserve(NSites);
  for (uint32_t I = 0; I != NSites; ++I) {
    Profile::Site S;
    S.Func = R.u32();
    S.Line = R.u32();
    S.Col = R.u32();
    S.Desc = R.u32();
    if (S.Func >= NFuncs && !R.failed())
      return Bad("site function out of range");
    P.Sites.push_back(S);
  }

  uint32_t NFrames = R.u32();
  if (!R.countOk(NFrames))
    return Bad("bad frame count");
  P.Frames.reserve(NFrames);
  for (uint32_t I = 0; I != NFrames; ++I) {
    Profile::Frame F;
    F.RetPC = R.u32();
    F.Func = R.u32();
    if (F.Func >= NFuncs && !R.failed())
      return Bad("frame function out of range");
    P.Frames.push_back(F);
  }

  uint32_t NStacks = R.u32();
  if (!R.countOk(NStacks))
    return Bad("bad stack count");
  P.Stacks.reserve(NStacks);
  for (uint32_t I = 0; I != NStacks; ++I) {
    Profile::Stack S;
    S.FirstFrame = R.u32();
    S.NumFrames = R.u32();
    if (!R.failed() && static_cast<uint64_t>(S.FirstFrame) + S.NumFrames >
                           static_cast<uint64_t>(NFrames))
      return Bad("stack frame range out of range");
    P.Stacks.push_back(S);
  }
  if (R.failed())
    return Bad("truncated stack table");

  uint32_t NMut = R.u32();
  if (!R.countOk(NMut))
    return Bad("bad mutator row count");
  P.Mutator.reserve(NMut);
  for (uint32_t I = 0; I != NMut; ++I) {
    Profile::MutRow Row;
    Row.StackId = R.u32();
    Row.Samples = R.u64();
    Row.Weight = R.u64();
    if (Row.StackId >= NStacks && !R.failed())
      return Bad("mutator stack id out of range");
    P.Mutator.push_back(Row);
  }
  uint32_t NAlloc = R.u32();
  if (!R.countOk(NAlloc))
    return Bad("bad allocation row count");
  P.Alloc.reserve(NAlloc);
  for (uint32_t I = 0; I != NAlloc; ++I) {
    Profile::AllocRow Row;
    Row.StackId = R.u32();
    Row.Site = R.u32();
    Row.Count = R.u64();
    Row.Bytes = R.u64();
    if (!R.failed()) {
      if (Row.StackId >= NStacks)
        return Bad("allocation stack id out of range");
      if (Row.Site != vm::NoAllocSite && Row.Site >= NSites)
        return Bad("allocation site out of range");
    }
    P.Alloc.push_back(Row);
  }
  uint32_t NReq = R.u32();
  if (!R.countOk(NReq))
    return Bad("bad request count");
  P.Requests.reserve(NReq);
  for (uint32_t I = 0; I != NReq; ++I) {
    Profile::Request Q;
    Q.Seq = R.u64();
    Q.Samples = R.u64();
    Q.Weight = R.u64();
    Q.Allocs = R.u64();
    Q.AllocBytes = R.u64();
    P.Requests.push_back(Q);
  }

  if (R.failed())
    return Bad("truncated profile");
  if (R.remaining() != 0)
    return Bad("trailing bytes after profile");
  return true;
}

bool obs::writeProfileFile(const std::string &Path, const Profile &P,
                           std::string &Err) {
  std::vector<uint8_t> Blob;
  encodeProfile(P, Blob);
  std::ofstream F(Path, std::ios::binary | std::ios::trunc);
  if (!F) {
    Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  F.write(reinterpret_cast<const char *>(Blob.data()),
          static_cast<std::streamsize>(Blob.size()));
  F.flush();
  if (!F) {
    Err = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

bool obs::readProfileFile(const std::string &Path, Profile &P,
                          std::string &Err) {
  std::ifstream F(Path, std::ios::binary);
  if (!F) {
    Err = "cannot open '" + Path + "'";
    return false;
  }
  std::vector<uint8_t> Blob((std::istreambuf_iterator<char>(F)),
                            std::istreambuf_iterator<char>());
  return decodeProfile(Blob, P, Err);
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

std::string funcName(const Profile &P, uint32_t Func) {
  if (Func < P.FuncNames.size() && !P.FuncNames[Func].empty())
    return P.FuncNames[Func];
  return "func#" + std::to_string(Func);
}

std::string siteLabel(const Profile &P, uint32_t Site) {
  if (Site == vm::NoAllocSite)
    return "(no site)";
  if (Site >= P.Sites.size())
    return "site#" + std::to_string(Site);
  const Profile::Site &S = P.Sites[Site];
  std::string L = funcName(P, S.Func);
  L += ':';
  L += std::to_string(S.Line);
  L += ':';
  L += std::to_string(S.Col);
  return L;
}

std::string pct(uint64_t Part, uint64_t Whole) {
  if (Whole == 0)
    return "0.0%";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%",
                100.0 * static_cast<double>(Part) / static_cast<double>(Whole));
  return Buf;
}

struct FuncAgg {
  uint64_t SelfW = 0;
  uint64_t CumW = 0;
  uint64_t Samples = 0;
};

/// Per-function self/cumulative mutator aggregation.  Cumulative counts a
/// function once per stack however many frames it occupies (recursion).
std::map<std::string, FuncAgg> aggregateMutator(const Profile &P) {
  std::map<std::string, FuncAgg> Agg;
  std::vector<std::string> Seen;
  for (const Profile::MutRow &Row : P.Mutator) {
    const Profile::Stack &S = P.Stacks[Row.StackId];
    if (S.NumFrames == 0) {
      FuncAgg &A = Agg["[overflow]"];
      A.SelfW += Row.Weight;
      A.CumW += Row.Weight;
      A.Samples += Row.Samples;
      continue;
    }
    std::string Leaf = funcName(P, P.Frames[S.FirstFrame].Func);
    FuncAgg &A = Agg[Leaf];
    A.SelfW += Row.Weight;
    A.Samples += Row.Samples;
    Seen.clear();
    for (uint32_t I = 0; I != S.NumFrames; ++I) {
      std::string F = funcName(P, P.Frames[S.FirstFrame + I].Func);
      if (std::find(Seen.begin(), Seen.end(), F) != Seen.end())
        continue;
      Seen.push_back(F);
      Agg[F].CumW += Row.Weight;
    }
  }
  return Agg;
}

std::string foldedKey(const Profile &P, uint32_t StackId) {
  return obs::foldedStack(P, StackId);
}

void renderRule(std::string &Out, const std::string &Title) {
  Out += "== ";
  Out += Title;
  Out += " ";
  if (Title.size() < 60)
    Out.append(60 - Title.size(), '=');
  Out += '\n';
}

} // namespace

std::string obs::foldedStack(const Profile &P, uint32_t StackId) {
  if (StackId >= P.Stacks.size())
    return "[invalid]";
  const Profile::Stack &S = P.Stacks[StackId];
  if (S.NumFrames == 0)
    return "[overflow]";
  std::string Key;
  for (uint32_t I = S.NumFrames; I != 0; --I) {
    if (!Key.empty())
      Key += ';';
    Key += funcName(P, P.Frames[S.FirstFrame + I - 1].Func);
  }
  return Key;
}

std::string obs::renderProfile(const Profile &P, size_t TopN) {
  std::string Out;
  renderRule(Out, "profile: " + P.Program);
  if (!P.RunOk) {
    Out += "run FAILED";
    if (!P.RunError.empty()) {
      Out += ": ";
      Out += P.RunError;
    }
    Out += " (profile is partial)\n";
  }
  Out += "tool " + P.ToolVersion + "; seed " + std::to_string(P.Seed) + "\n";
  Out += "interval " + std::to_string(P.IntervalInstrs) + " instrs; total " +
         std::to_string(P.TotalInstrs) + " instrs; " +
         std::to_string(P.Samples) + " samples covering " +
         std::to_string(P.SampleWeight) + " instrs (" +
         pct(P.SampleWeight, P.TotalInstrs) + ")\n";
  Out += std::to_string(P.Allocs) + " allocations, " +
         std::to_string(P.AllocBytes) + " bytes, " +
         std::to_string(P.Alloc.size()) + " alloc stacks; " +
         std::to_string(P.Mutator.size()) + " mutator stacks\n";
  Out += "walk: " + std::to_string(P.FramesSampled) + " frames decoded, " +
         std::to_string(P.LiveSlotsSampled) + " live slots, " +
         std::to_string(P.LiveRegsSampled) + " live regs, " +
         std::to_string(P.DerivedSampled) + " derived, " +
         std::to_string(P.FramesUnmapped) + " unmapped, " +
         std::to_string(P.WalkErrors) + " errors\n";
  if (P.NodesDropped || P.StacksDropped || P.RequestsDropped)
    Out += "dropped: " + std::to_string(P.NodesDropped) + " nodes, " +
           std::to_string(P.StacksDropped) + " stacks, " +
           std::to_string(P.RequestsDropped) + " requests\n";

  // Mutator: top functions by self weight, with cumulative alongside.
  auto Agg = aggregateMutator(P);
  std::vector<std::pair<std::string, FuncAgg>> Rows(Agg.begin(), Agg.end());
  std::stable_sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
    if (A.second.SelfW != B.second.SelfW)
      return A.second.SelfW > B.second.SelfW;
    return A.first < B.first;
  });
  Out += '\n';
  renderRule(Out, "mutator time (by function)");
  Out += "      self   self%        cum    cum%  samples  function\n";
  size_t Shown = 0;
  for (const auto &[Name, A] : Rows) {
    if (Shown++ == TopN)
      break;
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf), "%10llu  %6s  %9llu  %6s  %7llu  ",
                  static_cast<unsigned long long>(A.SelfW),
                  pct(A.SelfW, P.SampleWeight).c_str(),
                  static_cast<unsigned long long>(A.CumW),
                  pct(A.CumW, P.SampleWeight).c_str(),
                  static_cast<unsigned long long>(A.Samples));
    Out += Buf;
    Out += Name;
    Out += '\n';
  }
  if (Rows.empty())
    Out += "(no samples)\n";

  // Allocation: by site.
  std::map<std::string, std::pair<uint64_t, uint64_t>> BySite;
  for (const Profile::AllocRow &Row : P.Alloc) {
    auto &E = BySite[siteLabel(P, Row.Site)];
    E.first += Row.Count;
    E.second += Row.Bytes;
  }
  std::vector<std::pair<std::string, std::pair<uint64_t, uint64_t>>> SiteRows(
      BySite.begin(), BySite.end());
  std::stable_sort(SiteRows.begin(), SiteRows.end(),
                   [](const auto &A, const auto &B) {
                     if (A.second.second != B.second.second)
                       return A.second.second > B.second.second;
                     return A.first < B.first;
                   });
  Out += '\n';
  renderRule(Out, "allocation (by site)");
  Out += "     bytes  bytes%    count  site\n";
  Shown = 0;
  for (const auto &[Label, CB] : SiteRows) {
    if (Shown++ == TopN)
      break;
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "%10llu  %6s  %7llu  ",
                  static_cast<unsigned long long>(CB.second),
                  pct(CB.second, P.AllocBytes).c_str(),
                  static_cast<unsigned long long>(CB.first));
    Out += Buf;
    Out += Label;
    Out += '\n';
  }
  if (SiteRows.empty())
    Out += "(no allocations)\n";

  // Allocation: top stacks by bytes.
  std::vector<const Profile::AllocRow *> AllocSorted;
  AllocSorted.reserve(P.Alloc.size());
  for (const Profile::AllocRow &Row : P.Alloc)
    AllocSorted.push_back(&Row);
  std::stable_sort(AllocSorted.begin(), AllocSorted.end(),
                   [](const Profile::AllocRow *A, const Profile::AllocRow *B) {
                     if (A->Bytes != B->Bytes)
                       return A->Bytes > B->Bytes;
                     return A->StackId < B->StackId;
                   });
  Out += '\n';
  renderRule(Out, "allocation (top stacks)");
  Shown = 0;
  for (const Profile::AllocRow *Row : AllocSorted) {
    if (Shown++ == TopN)
      break;
    Out += std::to_string(Row->Bytes) + " bytes / " +
           std::to_string(Row->Count) + " objs at " +
           siteLabel(P, Row->Site) + "\n    " + foldedKey(P, Row->StackId) +
           '\n';
  }
  if (AllocSorted.empty())
    Out += "(no allocations)\n";

  // Requests.
  if (!P.Requests.empty()) {
    Out += '\n';
    renderRule(Out, "requests");
    Out += std::to_string(P.Requests.size()) + " requests";
    if (P.RequestsDropped)
      Out += " (+" + std::to_string(P.RequestsDropped) + " dropped)";
    Out += "; top by sampled weight:\n";
    std::vector<const Profile::Request *> ReqSorted;
    ReqSorted.reserve(P.Requests.size());
    for (const Profile::Request &Q : P.Requests)
      ReqSorted.push_back(&Q);
    std::stable_sort(ReqSorted.begin(), ReqSorted.end(),
                     [](const Profile::Request *A, const Profile::Request *B) {
                       if (A->Weight != B->Weight)
                         return A->Weight > B->Weight;
                       return A->Seq < B->Seq;
                     });
    Shown = 0;
    for (const Profile::Request *Q : ReqSorted) {
      if (Shown++ == TopN)
        break;
      Out += "req #" + std::to_string(Q->Seq) + ": " +
             std::to_string(Q->Samples) + " samples / " +
             std::to_string(Q->Weight) + " instrs, " +
             std::to_string(Q->Allocs) + " allocs / " +
             std::to_string(Q->AllocBytes) + " bytes\n";
    }
  }
  return Out;
}

std::string obs::renderFolded(const Profile &P, bool Alloc) {
  std::string Out;
  if (Alloc) {
    for (const Profile::AllocRow &Row : P.Alloc) {
      Out += foldedKey(P, Row.StackId);
      Out += ' ';
      Out += std::to_string(Row.Bytes);
      Out += '\n';
    }
  } else {
    for (const Profile::MutRow &Row : P.Mutator) {
      Out += foldedKey(P, Row.StackId);
      Out += ' ';
      Out += std::to_string(Row.Weight);
      Out += '\n';
    }
  }
  return Out;
}

std::string obs::renderDiff(const Profile &A, const Profile &B, size_t TopN) {
  // Keyed by folded path so two profiles of different runs (different
  // interned ids) still line up.
  std::map<std::string, std::pair<int64_t, int64_t>> Delta; // {a, b}
  for (const Profile::MutRow &Row : A.Mutator)
    Delta[foldedKey(A, Row.StackId)].first +=
        static_cast<int64_t>(Row.Weight);
  for (const Profile::MutRow &Row : B.Mutator)
    Delta[foldedKey(B, Row.StackId)].second +=
        static_cast<int64_t>(Row.Weight);

  std::vector<std::pair<std::string, int64_t>> Rows;
  for (const auto &[Key, AB] : Delta)
    if (AB.second != AB.first)
      Rows.push_back({Key, AB.second - AB.first});
  std::stable_sort(Rows.begin(), Rows.end(),
                   [](const auto &X, const auto &Y) {
                     int64_t AX = X.second < 0 ? -X.second : X.second;
                     int64_t AY = Y.second < 0 ? -Y.second : Y.second;
                     if (AX != AY)
                       return AX > AY;
                     return X.first < Y.first;
                   });

  std::string Out;
  renderRule(Out, "profile diff (mutator weight, B - A)");
  Out += "A: " + A.Program + ", " + std::to_string(A.SampleWeight) +
         " instrs sampled\n";
  Out += "B: " + B.Program + ", " + std::to_string(B.SampleWeight) +
         " instrs sampled\n";
  size_t Shown = 0;
  for (const auto &[Key, D] : Rows) {
    if (Shown++ == TopN)
      break;
    Out += (D >= 0 ? "+" : "") + std::to_string(D) + "  " + Key + '\n';
  }
  if (Rows.empty())
    Out += "(no mutator-weight differences)\n";
  return Out;
}

std::string obs::profileSummary(const Profile &P) {
  std::vector<uint8_t> Body;
  encodeProfileBody(P, Body);
  uint64_t H = 14695981039346656037ull;
  for (uint8_t B : Body) {
    H ^= B;
    H *= 1099511628211ull;
  }
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(H));
  std::string S = std::to_string(P.Samples);
  S += ':';
  S += std::to_string(P.SampleWeight);
  S += ':';
  S += std::to_string(P.Stacks.size());
  S += ':';
  S += std::to_string(P.Allocs);
  S += ':';
  S += std::to_string(P.AllocBytes);
  S += ':';
  S += std::to_string(P.WalkErrors);
  S += ':';
  S += Hex;
  return S;
}
