//===- obs/Trace.cpp ------------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "support/Provenance.h"
#include "vm/Heap.h"

#include <algorithm>
#include <cassert>
#include <ostream>

using namespace mgc;
using namespace mgc::obs;

void obs::appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        Out += "\\u00";
        Out += Hex[(C >> 4) & 0xf];
        Out += Hex[C & 0xf];
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

namespace {

void field(std::string &Out, const char *Key, uint64_t V, bool First = false) {
  if (!First)
    Out += ',';
  Out += '"';
  Out += Key;
  Out += "\":";
  Out += std::to_string(V);
}

void fieldStr(std::string &Out, const char *Key, const std::string &V,
              bool First = false) {
  if (!First)
    Out += ',';
  Out += '"';
  Out += Key;
  Out += "\":";
  appendJsonString(Out, V);
}

} // namespace

Tracer::Tracer(TracerConfig C) : Config(std::move(C)) {
  if (Config.Sites)
    Counters.resize(Config.Sites->Sites.size());
  Pending.reserve(Config.PendingCapacity);
  Ring.resize(std::max<size_t>(Config.RingCapacity, 1));
  PausesMinor.reserve(1024);
  PausesFull.reserve(1024);
  ReqInstrs.reserve(std::min<size_t>(Config.RequestCapacity, 1u << 12));
  if (Config.Leak.Enabled && !Counters.empty()) {
    // The least-squares denominator needs W >= 2; everything below is
    // preallocated so sampleCollection never allocates.
    if (Config.Leak.Window < 2)
      Config.Leak.Window = 2;
    LeakRing.assign(Counters.size() * size_t(Config.Leak.Window), 0);
    LeakScratch.assign(Counters.size(), 0);
    LeakWorkerAcc.assign(Counters.size() * size_t(MaxGcWorkers), 0);
    LeakFirst.assign(Counters.size(), 0);
  }
}

void Tracer::recordRequest(uint64_t Seq, uint64_t Instrs, uint64_t GcNanos,
                           uint64_t Collections) {
  if (!Enabled)
    return;
  ++ReqCount;
  ReqGcNanosTotal += GcNanos;
  ReqCollectionsTotal += Collections;
  if (ReqInstrs.size() < Config.RequestCapacity)
    ReqInstrs.push_back(Instrs);
  else
    ++DroppedRequests;
  if (Stream) {
    std::string L = "{\"type\":\"req\"";
    field(L, "seq", Seq);
    field(L, "instrs", Instrs);
    field(L, "gc_ns", GcNanos);
    field(L, "collections", Collections);
    L += "}\n";
    *Stream << L;
  }
}

void Tracer::enable(std::ostream *S) {
  Enabled = true;
  Stream = S;
  if (Stream)
    writeHeader();
}

void Tracer::writeHeader() {
  std::string L = "{\"type\":\"meta\"";
  fieldStr(L, "program", Config.ProgramName);
  fieldStr(L, "tool_version", support::ToolVersion);
  fieldStr(L, "build_flags", support::buildFlags());
  field(L, "seed", Config.Seed);
  if (!Config.Dispatch.empty())
    fieldStr(L, "dispatch", Config.Dispatch);
  field(L, "gen_gc", Config.GenGc ? 1 : 0);
  field(L, "sites", Counters.size());
  field(L, "site_table_bytes", Config.SiteTableBytes);
  L += "}\n";
  *Stream << L;
  if (!Config.Sites)
    return;
  for (size_t I = 0; I != Config.Sites->Sites.size(); ++I) {
    const gcmaps::AllocSite &S = Config.Sites->Sites[I];
    std::string Line = "{\"type\":\"site\"";
    field(Line, "id", I);
    fieldStr(Line, "func",
             S.Func < Config.FuncNames.size() ? Config.FuncNames[S.Func]
                                              : std::to_string(S.Func));
    field(Line, "line", S.Line);
    field(Line, "col", S.Col);
    field(Line, "desc", S.Desc);
    Line += "}\n";
    *Stream << Line;
  }
}

GcEvent &Tracer::beginEvent(uint64_t Seq, bool Minor, uint32_t TriggerSite) {
  assert(!CurActive && "nested collection events");
  Cur = GcEvent();
  Cur.Seq = Seq;
  Cur.Minor = Minor;
  Cur.TriggerSite = TriggerSite;
  CurActive = true;
  return Cur;
}

namespace {

/// Bit 0 of the (still-readable) from-space header is the forwarding tag:
/// set iff the object was evacuated, i.e. survived — and then the rest of
/// the word is its new address.  Returns 0 for objects that died.
uint64_t forwardedTo(uint64_t Addr) {
  uint64_t Hd = *reinterpret_cast<const uint64_t *>(Addr);
  return (Hd & 1) ? (Hd & ~uint64_t(1)) : 0;
}

} // namespace

void Tracer::sweepSurvivors(const vm::Heap &H, bool Minor) {
  (void)H;
  (void)Minor;
  if (Enabled) {
    for (const PendingAlloc &P : Pending) {
      if (forwardedTo(P.Addr) != 0) {
        if (P.Site < Counters.size()) {
          ++Counters[P.Site].Survived;
          Counters[P.Site].SurvivedBytes += P.Bytes;
        }
      }
    }
  }
  // Every pending allocation has now experienced its first collection.
  Pending.clear();
}

namespace {

/// Evaluates one site's sliding window.  \p SiteRing points at the site's
/// W-slot circular span; \p Samples orders it (slot Samples % W is the
/// oldest).  Flagged iff every step is non-decreasing, the window shows
/// net growth, and the newest sample clears \p MinBytes.  \p Slope gets
/// the integer least-squares fit in bytes per full collection.
bool leakEval(const uint64_t *SiteRing, uint32_t W, uint64_t Samples,
              uint64_t MinBytes, int64_t &Slope, uint64_t &Newest) {
  Slope = 0;
  Newest = 0;
  if (Samples < W)
    return false;
  uint64_t Base = Samples % W;
  bool NonDecreasing = true;
  uint64_t Prev = 0, First = 0, Last = 0;
  int64_t SumY = 0, SumIY = 0;
  for (uint32_t J = 0; J != W; ++J) {
    uint64_t Y = SiteRing[(Base + J) % W];
    if (J == 0)
      First = Y;
    else if (Y < Prev)
      NonDecreasing = false;
    Prev = Y;
    Last = Y;
    SumY += static_cast<int64_t>(Y);
    SumIY += static_cast<int64_t>(J) * static_cast<int64_t>(Y);
  }
  // num/den is the least-squares slope over sample indices 0..W-1; the
  // denominator is a positive constant of W alone, so integer division
  // keeps the fit deterministic.
  int64_t SumI = int64_t(W) * (W - 1) / 2;
  int64_t SumI2 = int64_t(W) * (W - 1) * (2 * int64_t(W) - 1) / 6;
  int64_t Den = int64_t(W) * SumI2 - SumI * SumI;
  int64_t Num = int64_t(W) * SumIY - SumI * SumY;
  Slope = Num / Den;
  Newest = Last;
  return NonDecreasing && Last > First && Last >= MinBytes && Num > 0;
}

} // namespace

void Tracer::sampleCollection(uint64_t Collections, bool Minor) {
  if (!Enabled || LeakScratch.empty())
    return;
  ++LeakScans;
  // Minor collections never reclaim old space, so per-site live bytes ramp
  // monotonically between fulls; sampling there would flag every site.
  if (Minor)
    return;
  // Merge the per-worker in-copy accumulators into one sample: a full
  // collection copies every live object exactly once, so the slab sums are
  // the post-collection per-site live bytes.  Integer sums are order- and
  // partition-independent, so the merged sample (hence every flag) is
  // byte-identical across --gc-threads.  The slabs are consumed here so
  // the next full collection starts from zero.
  size_t NSites = LeakScratch.size();
  for (size_t S = 0; S != NSites; ++S) {
    uint64_t Sum = 0;
    for (unsigned Wk = 0; Wk != MaxGcWorkers; ++Wk) {
      uint64_t &Slot = LeakWorkerAcc[size_t(Wk) * NSites + S];
      Sum += Slot;
      Slot = 0;
    }
    LeakScratch[S] = Sum;
  }
  uint32_t W = Config.Leak.Window;
  size_t Slot = static_cast<size_t>(LeakSampleCount % W);
  for (size_t S = 0; S != NSites; ++S)
    LeakRing[S * W + Slot] = LeakScratch[S];
  ++LeakSampleCount;
  if (LeakSampleCount < W)
    return;
  for (size_t S = 0; S != NSites; ++S) {
    if (LeakFirst[S])
      continue; // the first-flag time is sticky
    int64_t Slope;
    uint64_t Newest;
    if (leakEval(&LeakRing[S * W], W, LeakSampleCount, Config.Leak.MinBytes,
                 Slope, Newest))
      LeakFirst[S] = Collections ? Collections : 1;
  }
}

std::vector<Tracer::LeakFlag> Tracer::leakFlags() const {
  std::vector<LeakFlag> Out;
  uint32_t W = Config.Leak.Window;
  for (size_t S = 0; S != LeakScratch.size(); ++S) {
    int64_t Slope;
    uint64_t Newest;
    if (!leakEval(&LeakRing[S * W], W, LeakSampleCount, Config.Leak.MinBytes,
                  Slope, Newest))
      continue;
    LeakFlag F;
    F.Site = static_cast<uint32_t>(S);
    F.SlopeBytes = Slope;
    F.LiveBytes = Newest;
    F.FirstFlagged = LeakFirst[S];
    Out.push_back(F);
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const LeakFlag &A, const LeakFlag &B) {
                     if (A.SlopeBytes != B.SlopeBytes)
                       return A.SlopeBytes > B.SlopeBytes;
                     return A.Site < B.Site;
                   });
  return Out;
}

std::string Tracer::leakJsonFields() const {
  std::string Out;
  field(Out, "leak_window", Config.Leak.Window, /*First=*/true);
  field(Out, "leak_min_bytes", Config.Leak.MinBytes);
  Out += ",\"leak_flags\":[";
  std::vector<LeakFlag> Flags = leakFlags();
  for (size_t I = 0; I != Flags.size(); ++I) {
    if (I)
      Out += ',';
    Out += "{\"site\":";
    Out += std::to_string(Flags[I].Site);
    Out += ",\"slope_bytes\":";
    Out += std::to_string(Flags[I].SlopeBytes);
    field(Out, "live_bytes", Flags[I].LiveBytes);
    field(Out, "first_flagged", Flags[I].FirstFlagged);
    Out += '}';
  }
  Out += ']';
  return Out;
}

std::vector<LiveAgg> Tracer::liveBySite(const vm::Heap &H,
                                        LiveAgg &NoSiteAgg) const {
  std::vector<LiveAgg> Per(Counters.size());
  NoSiteAgg = LiveAgg();
  H.forEachObject([&](uint64_t P) {
    uint64_t Hd = *reinterpret_cast<const uint64_t *>(P);
    uint32_t Site = vm::Heap::headerSite(Hd);
    uint64_t Bytes = H.objectWords(P) * sizeof(uint64_t);
    LiveAgg &A = Site < Per.size() ? Per[Site] : NoSiteAgg;
    ++A.Objects;
    A.Bytes += Bytes;
  });
  return Per;
}

std::vector<LiveAgg> Tracer::ageHistogram(const vm::Heap &H) const {
  std::vector<LiveAgg> Hist;
  H.forEachObject([&](uint64_t P) {
    uint64_t Hd = *reinterpret_cast<const uint64_t *>(P);
    unsigned Age = vm::Heap::headerAge(Hd);
    if (Age >= Hist.size())
      Hist.resize(Age + 1);
    ++Hist[Age].Objects;
    Hist[Age].Bytes += H.objectWords(P) * sizeof(uint64_t);
  });
  return Hist;
}

std::string Tracer::liveJsonFields(const vm::Heap &H) const {
  LiveAgg NoSiteAgg;
  std::vector<LiveAgg> Per = liveBySite(H, NoSiteAgg);
  auto Object = [&](std::string &Out, const char *Key, bool Bytes) {
    Out += '"';
    Out += Key;
    Out += "\":{";
    bool First = true;
    for (size_t I = 0; I != Per.size(); ++I) {
      if (Per[I].Objects == 0)
        continue;
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      Out += std::to_string(I);
      Out += "\":";
      Out += std::to_string(Bytes ? Per[I].Bytes : Per[I].Objects);
    }
    if (NoSiteAgg.Objects != 0) {
      if (!First)
        Out += ',';
      Out += "\"nosite\":";
      Out += std::to_string(Bytes ? NoSiteAgg.Bytes : NoSiteAgg.Objects);
    }
    Out += '}';
  };
  std::string Out;
  Object(Out, "live_objects_by_site", /*Bytes=*/false);
  Out += ',';
  Object(Out, "live_bytes_by_site", /*Bytes=*/true);
  Out += ",\"live_age_hist\":{";
  std::vector<LiveAgg> Hist = ageHistogram(H);
  bool First = true;
  for (size_t Age = 0; Age != Hist.size(); ++Age) {
    if (Hist[Age].Objects == 0)
      continue;
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    Out += std::to_string(Age);
    Out += "\":";
    Out += std::to_string(Hist[Age].Bytes);
  }
  Out += '}';
  return Out;
}

void Tracer::commitEvent() {
  assert(CurActive && "commit without a begun event");
  CurActive = false;
  Ring[static_cast<size_t>(TotalEvents % Ring.size())] = Cur;
  ++TotalEvents;
  (Cur.Minor ? PausesMinor : PausesFull).push_back(Cur.TotalNanos);
  if (Stream)
    writeEvent(Cur);
}

void Tracer::writeEvent(const GcEvent &Ev) {
  std::string L = "{\"type\":\"gc\"";
  field(L, "seq", Ev.Seq);
  fieldStr(L, "kind", Ev.Minor ? "minor" : "full");
  L += ",\"trigger_site\":";
  L += Ev.TriggerSite == NoSite
           ? std::string("-1")
           : std::to_string(Ev.TriggerSite);
  field(L, "rendezvous_ns", Ev.Phases.Rendezvous);
  field(L, "stack_trace_ns", Ev.Phases.StackTrace);
  field(L, "underive_ns", Ev.Phases.Underive);
  field(L, "copy_ns", Ev.Phases.Copy);
  field(L, "remset_ns", Ev.Phases.RemsetRebuild);
  field(L, "rederive_ns", Ev.Phases.Rederive);
  field(L, "total_ns", Ev.TotalNanos);
  field(L, "heap_before", Ev.HeapBeforeBytes);
  field(L, "heap_after", Ev.HeapAfterBytes);
  field(L, "frames", Ev.FramesTraced);
  field(L, "roots", Ev.RootsTraced);
  field(L, "objects_copied", Ev.ObjectsCopied);
  field(L, "bytes_copied", Ev.BytesCopied);
  field(L, "objects_promoted", Ev.ObjectsPromoted);
  field(L, "bytes_promoted", Ev.BytesPromoted);
  field(L, "derived_adjusted", Ev.DerivedAdjusted);
  field(L, "rendezvous_steps", Ev.RendezvousSteps);
  field(L, "cache_hits", Ev.CacheHits);
  field(L, "cache_misses", Ev.CacheMisses);
  field(L, "workers", Ev.Workers);
  // Per-worker phase spans (the parallel collector's load-balance view).
  // Unknown int keys are harmless to the strict JSONL re-parser — they
  // land in the record's generic int map.
  for (uint32_t W = 0; W != Ev.Workers && W != MaxGcWorkers; ++W) {
    std::string Key = "w" + std::to_string(W);
    field(L, (Key + "_trace_ns").c_str(), Ev.WorkerTraceNanos[W]);
    field(L, (Key + "_copy_ns").c_str(), Ev.WorkerCopyNanos[W]);
  }
  L += "}\n";
  *Stream << L;
}

std::vector<GcEvent> Tracer::retainedEvents() const {
  std::vector<GcEvent> Out;
  uint64_t N = std::min<uint64_t>(TotalEvents, Ring.size());
  Out.reserve(static_cast<size_t>(N));
  for (uint64_t I = TotalEvents - N; I != TotalEvents; ++I)
    Out.push_back(Ring[static_cast<size_t>(I % Ring.size())]);
  return Out;
}

static uint64_t percentileOf(std::vector<uint64_t> Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Sorted.size() - 1) +
                                   0.5);
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

Tracer::Percentiles Tracer::pausePercentiles(int Kind) const {
  std::vector<uint64_t> V;
  if (Kind == 0 || Kind == 1)
    V.insert(V.end(), PausesMinor.begin(), PausesMinor.end());
  if (Kind == 0 || Kind == 2)
    V.insert(V.end(), PausesFull.begin(), PausesFull.end());
  std::sort(V.begin(), V.end());
  Percentiles R;
  R.Count = V.size();
  if (!V.empty()) {
    R.P50 = percentileOf(V, 0.50);
    R.P95 = percentileOf(V, 0.95);
    R.P99 = percentileOf(V, 0.99);
    R.Max = V.back();
  }
  return R;
}

Tracer::Percentiles Tracer::requestPercentiles() const {
  std::vector<uint64_t> V = ReqInstrs;
  std::sort(V.begin(), V.end());
  Percentiles R;
  R.Count = V.size();
  if (!V.empty()) {
    R.P50 = percentileOf(V, 0.50);
    R.P95 = percentileOf(V, 0.95);
    R.P99 = percentileOf(V, 0.99);
    R.Max = V.back();
  }
  return R;
}

std::string Tracer::summaryJsonFields() const {
  std::string Out;
  field(Out, "events", TotalEvents, /*First=*/true);
  field(Out, "events_retained",
        std::min<uint64_t>(TotalEvents, Ring.size()));
  field(Out, "events_dropped_from_ring", eventsDropped());
  field(Out, "pending_dropped", DroppedPending);
  field(Out, "unattributed_allocs", UnattributedCount);
  field(Out, "unattributed_bytes", UnattributedBytes);
  Percentiles All = pausePercentiles(0);
  field(Out, "pause_p50_ns", All.P50);
  field(Out, "pause_p95_ns", All.P95);
  field(Out, "pause_max_ns", All.Max);
  Percentiles Minor = pausePercentiles(1);
  field(Out, "minor_pause_p50_ns", Minor.P50);
  field(Out, "minor_pause_p95_ns", Minor.P95);
  field(Out, "minor_pause_max_ns", Minor.Max);
  Percentiles Full = pausePercentiles(2);
  field(Out, "full_pause_p50_ns", Full.P50);
  field(Out, "full_pause_p95_ns", Full.P95);
  field(Out, "full_pause_max_ns", Full.Max);
  if (ReqCount) {
    // Server workloads only: per-request service demand (virtual time, in
    // instructions) and the GC work attributed to completed requests.
    field(Out, "requests", ReqCount);
    field(Out, "requests_dropped", DroppedRequests);
    field(Out, "req_gc_ns", ReqGcNanosTotal);
    field(Out, "req_collections", ReqCollectionsTotal);
    Percentiles Req = requestPercentiles();
    field(Out, "req_instr_p50", Req.P50);
    field(Out, "req_instr_p99", Req.P99);
    field(Out, "req_instr_max", Req.Max);
  }
  if (!LeakScratch.empty()) {
    // Leak-detector aggregates (flat; the per-site flags are their own
    // "leak" records / the nested leakJsonFields()).
    field(Out, "leak_scans", LeakScans);
    field(Out, "leak_samples", LeakSampleCount);
    field(Out, "leak_sites_flagged", leakFlags().size());
  }
  return Out;
}

void Tracer::finish(bool Ok, const std::string &Error, const vm::Heap *H) {
  if (Finished || !Stream)
    return;
  Finished = true;
  for (size_t I = 0; I != Counters.size(); ++I) {
    const SiteCounters &C = Counters[I];
    if (C.Count == 0)
      continue;
    std::string L = "{\"type\":\"site_stats\"";
    field(L, "id", I);
    field(L, "count", C.Count);
    field(L, "bytes", C.Bytes);
    field(L, "survived", C.Survived);
    field(L, "survived_bytes", C.SurvivedBytes);
    L += "}\n";
    *Stream << L;
  }
  if (Config.Attribution && H) {
    // End-of-run view of the header-borne attribution: what is still live
    // (per site, and per collection-count age), from a final heap walk.
    // Flat records so the strict JSONL re-parser in obs/Report.h can
    // consume them.
    LiveAgg NoSiteAgg;
    std::vector<LiveAgg> Per = liveBySite(*H, NoSiteAgg);
    auto WriteSiteLive = [&](int64_t Id, const LiveAgg &A) {
      if (A.Objects == 0)
        return;
      std::string L = "{\"type\":\"site_live\",\"id\":";
      L += std::to_string(Id);
      field(L, "objects", A.Objects);
      field(L, "bytes", A.Bytes);
      L += "}\n";
      *Stream << L;
    };
    for (size_t I = 0; I != Per.size(); ++I)
      WriteSiteLive(static_cast<int64_t>(I), Per[I]);
    WriteSiteLive(-1, NoSiteAgg);
    std::vector<LiveAgg> Hist = ageHistogram(*H);
    for (size_t Age = 0; Age != Hist.size(); ++Age) {
      if (Hist[Age].Objects == 0)
        continue;
      std::string L = "{\"type\":\"age_hist\"";
      field(L, "age", Age);
      field(L, "objects", Hist[Age].Objects);
      field(L, "bytes", Hist[Age].Bytes);
      L += "}\n";
      *Stream << L;
    }
  }
  if (!LeakScratch.empty()) {
    // One flat record per currently flagged site, in (slope desc, site
    // asc) order, so mgc-report can render the leaks section without any
    // snapshot file.
    for (const LeakFlag &F : leakFlags()) {
      std::string L = "{\"type\":\"leak\"";
      field(L, "site", F.Site);
      L += ",\"slope_bytes\":";
      L += std::to_string(F.SlopeBytes);
      field(L, "live_bytes", F.LiveBytes);
      field(L, "first_flagged", F.FirstFlagged);
      field(L, "window", Config.Leak.Window);
      L += "}\n";
      *Stream << L;
    }
  }
  std::string L = "{\"type\":\"run\"";
  fieldStr(L, "exit", Ok ? "ok" : "error");
  if (!Ok)
    fieldStr(L, "error", Error);
  L += ',';
  L += summaryJsonFields();
  L += "}\n";
  *Stream << L;
  Stream->flush();
}
