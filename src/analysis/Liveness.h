//===- analysis/Liveness.h - Virtual register liveness ----------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward liveness over virtual registers.  The analysis optionally
/// applies the paper's *dead base* rule (§4): every use of a derived value
/// is also treated as a use of each of its base values, which forces base
/// lifetimes to cover the lifetimes of values derived from them.  The
/// extra-uses map is supplied by the derivation analysis.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_ANALYSIS_LIVENESS_H
#define MGC_ANALYSIS_LIVENESS_H

#include "ir/IR.h"
#include "support/DynBitset.h"

#include <map>
#include <vector>

namespace mgc {
namespace analysis {

/// Extra uses attached to specific instructions: when instruction (Block,
/// Index) executes, the listed vregs are considered used as well.
using ExtraUses = std::map<std::pair<unsigned, unsigned>, std::vector<ir::VReg>>;

class Liveness {
public:
  /// Computes liveness for \p F.  \p Extra may be null.
  Liveness(const ir::Function &F, const ExtraUses *Extra = nullptr);

  const DynBitset &liveIn(unsigned Block) const { return LiveIn[Block]; }
  const DynBitset &liveOut(unsigned Block) const { return LiveOut[Block]; }

  /// The set of vregs live immediately *before* instruction \p Index of
  /// \p Block executes — for a call gc-point this includes the call's own
  /// arguments, which is exactly the "live at the gc-point" set the tables
  /// must describe (an active call's argument slots are still read by the
  /// callee).
  DynBitset liveBefore(unsigned Block, unsigned Index) const;

  /// Visits instructions of \p Block backwards; \p Visit(Index, LiveAfter,
  /// LiveBefore) sees the live sets around each instruction.
  template <typename Fn> void visitBlock(unsigned Block, Fn &&Visit) const {
    const ir::BasicBlock &BB = *F.Blocks[Block];
    DynBitset Live = LiveOut[Block];
    for (size_t I = BB.Instrs.size(); I-- > 0;) {
      DynBitset After = Live;
      applyTransfer(Block, static_cast<unsigned>(I), Live);
      Visit(static_cast<unsigned>(I), After, Live);
    }
  }

private:
  /// Updates \p Live across instruction (Block, Index), backward.
  void applyTransfer(unsigned Block, unsigned Index, DynBitset &Live) const;

  const ir::Function &F;
  const ExtraUses *Extra;
  std::vector<DynBitset> LiveIn, LiveOut;
};

} // namespace analysis
} // namespace mgc

#endif // MGC_ANALYSIS_LIVENESS_H
