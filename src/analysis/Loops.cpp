//===- analysis/Loops.cpp -------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Loops.h"

#include <algorithm>
#include <cassert>

using namespace mgc;
using namespace mgc::analysis;
using namespace mgc::ir;

LoopInfo::LoopInfo(const Function &F) {
  size_t NumBlocks = F.Blocks.size();

  // DFS to find back edges: an edge B -> H where H is on the current DFS
  // stack.  The front end generates reducible control flow, so each such H
  // heads a natural loop.
  std::vector<uint8_t> State(NumBlocks, 0); // 0 unseen, 1 on stack, 2 done
  std::vector<std::pair<unsigned, size_t>> Stack;
  std::vector<std::pair<unsigned, unsigned>> BackEdges; // (latch, header)
  if (NumBlocks != 0) {
    Stack.emplace_back(0, 0);
    State[0] = 1;
  }
  while (!Stack.empty()) {
    unsigned Id = Stack.back().first;
    std::vector<unsigned> Succs = F.Blocks[Id]->successors();
    if (Stack.back().second < Succs.size()) {
      unsigned S = Succs[Stack.back().second++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      } else if (State[S] == 1) {
        BackEdges.emplace_back(Id, S);
      }
      continue;
    }
    State[Id] = 2;
    Stack.pop_back();
  }

  // Group back edges by header; compute each loop's body with the standard
  // backward reachability from the latches.
  auto Preds = F.predecessors();
  std::sort(BackEdges.begin(), BackEdges.end(),
            [](auto &A, auto &B) { return A.second < B.second; });
  for (size_t I = 0; I != BackEdges.size();) {
    unsigned Header = BackEdges[I].second;
    Loop L;
    L.Header = Header;
    L.Blocks = DynBitset(NumBlocks);
    L.Blocks.set(Header);
    std::vector<unsigned> Work;
    while (I != BackEdges.size() && BackEdges[I].second == Header) {
      unsigned Latch = BackEdges[I].first;
      L.Latches.push_back(Latch);
      if (!L.Blocks.test(Latch)) {
        L.Blocks.set(Latch);
        Work.push_back(Latch);
      }
      ++I;
    }
    while (!Work.empty()) {
      unsigned B = Work.back();
      Work.pop_back();
      for (unsigned P : Preds[B])
        if (!L.Blocks.test(P)) {
          L.Blocks.set(P);
          Work.push_back(P);
        }
    }
    Loops.push_back(std::move(L));
  }

  // Nesting: loop A is inside loop B if B contains A's header and A != B.
  // The innermost parent is the smallest containing loop.
  for (size_t A = 0; A != Loops.size(); ++A) {
    size_t BestSize = NumBlocks + 1;
    for (size_t B = 0; B != Loops.size(); ++B) {
      if (A == B || !Loops[B].contains(Loops[A].Header))
        continue;
      if (Loops[B].Blocks.count() >= Loops[A].Blocks.count() &&
          Loops[B].Blocks.count() < BestSize) {
        // Guard against identical block sets (irreducible shapes don't
        // occur, but self-comparison safety costs nothing).
        Loops[A].Parent = static_cast<int>(B);
        BestSize = Loops[B].Blocks.count();
      }
    }
  }
  for (Loop &L : Loops) {
    unsigned Depth = 1;
    int P = L.Parent;
    while (P >= 0) {
      ++Depth;
      P = Loops[P].Parent;
    }
    L.Depth = Depth;
  }

  // Innermost-loop map: deepest loop wins.
  InnermostLoop.assign(NumBlocks, -1);
  for (size_t I = 0; I != Loops.size(); ++I)
    Loops[I].Blocks.forEach([&](size_t B) {
      int Cur = InnermostLoop[B];
      if (Cur < 0 || Loops[Cur].Depth < Loops[I].Depth)
        InnermostLoop[B] = static_cast<int>(I);
    });
}

unsigned analysis::ensurePreheader(Function &F, const Loop &L) {
  auto Preds = F.predecessors();
  std::vector<unsigned> Outside;
  for (unsigned P : Preds[L.Header])
    if (!L.contains(P))
      Outside.push_back(P);

  if (Outside.size() == 1) {
    const BasicBlock *P = F.Blocks[Outside[0]].get();
    if (P->hasTerminator() && P->terminator().Op == Opcode::Jump)
      return Outside[0];
  }

  BasicBlock *Pre = F.newBlock();
  Pre->Instrs.push_back(Instr::jump(L.Header));
  for (unsigned P : Outside) {
    Instr &T = F.Blocks[P]->Instrs.back();
    assert(T.isTerminator());
    if (T.Op == Opcode::Jump && T.Target0 == L.Header)
      T.Target0 = Pre->Id;
    if (T.Op == Opcode::Branch) {
      if (T.Target0 == L.Header)
        T.Target0 = Pre->Id;
      if (T.Target1 == L.Header)
        T.Target1 = Pre->Id;
    }
  }
  return Pre->Id;
}
