//===- analysis/Derivations.cpp -------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Derivations.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace mgc;
using namespace mgc::analysis;
using namespace mgc::ir;

void Derivation::add(VReg R, int Coeff) {
  for (size_t I = 0; I != Bases.size(); ++I) {
    if (Bases[I].first == R) {
      Bases[I].second += Coeff;
      if (Bases[I].second == 0)
        Bases.erase(Bases.begin() + static_cast<long>(I));
      return;
    }
    if (Bases[I].first > R) {
      Bases.insert(Bases.begin() + static_cast<long>(I), {R, Coeff});
      return;
    }
  }
  Bases.emplace_back(R, Coeff);
}

void Derivation::addAll(const Derivation &O, int Sign) {
  for (const auto &[R, C] : O.Bases)
    add(R, Sign * C);
}

std::string Derivation::str() const {
  std::string S;
  for (const auto &[R, C] : Bases) {
    S += C >= 0 ? "+" : "-";
    int A = C >= 0 ? C : -C;
    if (A != 1)
      S += std::to_string(A) + "*";
    S += "%" + std::to_string(R);
  }
  if (S.empty())
    S = "(E only)";
  return S;
}

std::vector<VReg> DerivState::baseVRegs() const {
  std::set<VReg> Set;
  if (K == Kind::Single)
    for (const auto &[R, C] : D.Bases)
      Set.insert(R);
  if (K == Kind::Ambiguous)
    for (const Derivation &Alt : Alts)
      for (const auto &[R, C] : Alt.Bases)
        Set.insert(R);
  return std::vector<VReg>(Set.begin(), Set.end());
}

namespace {
/// The derivation(s) an operand contributes: a non-derived pointer-like
/// vreg is its own (single) base; a derived vreg contributes its current
/// state; an immediate contributes nothing (part of E).
DerivState operandState(const Function &F, const Operand &O,
                        const DerivMap &State) {
  DerivState S;
  if (!O.isReg()) {
    S.K = DerivState::Kind::Single; // Empty derivation: E only.
    return S;
  }
  PtrKind K = F.kindOf(O.R);
  if (K == PtrKind::Derived) {
    auto It = State.find(O.R);
    if (It == State.end())
      return S; // Unknown: used before defined (dead path).
    return It->second;
  }
  S.K = DerivState::Kind::Single;
  if (K != PtrKind::NonPtr)
    S.D.add(O.R, 1);
  return S;
}

/// Combines A + Sign*B over all alternatives.
DerivState combine(const DerivState &A, const DerivState &B, int Sign) {
  DerivState Out;
  if (A.K == DerivState::Kind::Unknown || B.K == DerivState::Kind::Unknown)
    return Out;
  auto AltsOf = [](const DerivState &S) {
    return S.K == DerivState::Kind::Single ? std::vector<Derivation>{S.D}
                                           : S.Alts;
  };
  std::set<Derivation> Result;
  for (const Derivation &DA : AltsOf(A))
    for (const Derivation &DB : AltsOf(B)) {
      Derivation D = DA;
      D.addAll(DB, Sign);
      Result.insert(std::move(D));
    }
  if (Result.size() == 1) {
    Out.K = DerivState::Kind::Single;
    Out.D = *Result.begin();
  } else {
    Out.K = DerivState::Kind::Ambiguous;
    Out.Alts.assign(Result.begin(), Result.end());
  }
  return Out;
}
} // namespace

void DerivationAnalysis::transfer(const Function &F, const Instr &I,
                                  DerivMap &State) {
  if (I.Dst == NoVReg || F.kindOf(I.Dst) != PtrKind::Derived)
    return;
  switch (I.Op) {
  case Opcode::Mov:
    State[I.Dst] = operandState(F, I.A, State);
    return;
  case Opcode::DeriveAdd:
  case Opcode::DeriveSub: {
    // The integer offset operand is part of E; only the base matters.
    State[I.Dst] = operandState(F, I.A, State);
    return;
  }
  case Opcode::DeriveDiff: {
    DerivState A = operandState(F, I.A, State);
    DerivState B = operandState(F, I.B, State);
    State[I.Dst] = combine(A, B, /*Sign=*/-1);
    return;
  }
  default:
    assert(false && "derived vreg defined by a non-derive instruction");
    return;
  }
}

void DerivationAnalysis::join(DerivMap &Into, const DerivMap &From,
                              bool &Changed) {
  for (const auto &[R, S] : From) {
    auto It = Into.find(R);
    if (It == Into.end()) {
      Into[R] = S;
      Changed = true;
      continue;
    }
    DerivState &T = It->second;
    if (T == S)
      continue;
    if (S.K == DerivState::Kind::Unknown)
      continue;
    if (T.K == DerivState::Kind::Unknown) {
      T = S;
      Changed = true;
      continue;
    }
    // Merge alternative sets.
    std::set<Derivation> Alts;
    auto Insert = [&](const DerivState &X) {
      if (X.K == DerivState::Kind::Single)
        Alts.insert(X.D);
      else
        Alts.insert(X.Alts.begin(), X.Alts.end());
    };
    Insert(T);
    Insert(S);
    DerivState New;
    if (Alts.size() == 1) {
      New.K = DerivState::Kind::Single;
      New.D = *Alts.begin();
    } else {
      New.K = DerivState::Kind::Ambiguous;
      New.Alts.assign(Alts.begin(), Alts.end());
    }
    if (!(New == T)) {
      T = std::move(New);
      Changed = true;
    }
  }
}

DerivationAnalysis::DerivationAnalysis(const Function &F) : F(F) {
  In.assign(F.Blocks.size(), DerivMap());
  std::vector<unsigned> Order = F.reversePostOrder();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B : Order) {
      DerivMap State = In[B];
      for (const Instr &I : F.Blocks[B]->Instrs)
        transfer(F, I, State);
      for (unsigned Succ : F.Blocks[B]->successors())
        join(In[Succ], State, Changed);
    }
  }
}

DerivMap DerivationAnalysis::stateBefore(unsigned Block,
                                         unsigned Index) const {
  DerivMap State = In[Block];
  const BasicBlock &BB = *F.Blocks[Block];
  for (unsigned I = 0; I != Index; ++I)
    transfer(F, BB.Instrs[I], State);
  return State;
}

std::map<std::pair<unsigned, unsigned>, std::vector<VReg>>
DerivationAnalysis::computeExtraUses() const {
  std::map<std::pair<unsigned, unsigned>, std::vector<VReg>> Extra;
  for (const auto &BB : F.Blocks) {
    DerivMap State = In[BB->Id];
    for (unsigned I = 0; I != BB->Instrs.size(); ++I) {
      const Instr &Ins = BB->Instrs[I];
      std::vector<VReg> Uses;
      Ins.collectUses(Uses);
      std::set<VReg> Bases;
      for (VReg R : Uses) {
        if (F.kindOf(R) != PtrKind::Derived)
          continue;
        auto It = State.find(R);
        if (It == State.end())
          continue;
        for (VReg B : It->second.baseVRegs())
          Bases.insert(B);
      }
      if (!Bases.empty())
        Extra[{BB->Id, I}] = std::vector<VReg>(Bases.begin(), Bases.end());
      transfer(F, Ins, State);
    }
  }
  return Extra;
}
