//===- analysis/Liveness.cpp ----------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

using namespace mgc;
using namespace mgc::analysis;
using namespace mgc::ir;

Liveness::Liveness(const Function &F, const ExtraUses *Extra)
    : F(F), Extra(Extra) {
  size_t NumBlocks = F.Blocks.size();
  size_t NumVRegs = F.VRegs.size();
  LiveIn.assign(NumBlocks, DynBitset(NumVRegs));
  LiveOut.assign(NumBlocks, DynBitset(NumVRegs));

  // Iterate to a fixpoint, processing blocks in reverse order (a decent
  // approximation of post-order for our forward-generated CFGs).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t B = NumBlocks; B-- > 0;) {
      DynBitset Out(NumVRegs);
      for (unsigned Succ : F.Blocks[B]->successors())
        Out.unionWith(LiveIn[Succ]);
      DynBitset In = Out;
      const BasicBlock &BB = *F.Blocks[B];
      for (size_t I = BB.Instrs.size(); I-- > 0;)
        applyTransfer(static_cast<unsigned>(B), static_cast<unsigned>(I), In);
      if (!(Out == LiveOut[B])) {
        LiveOut[B] = std::move(Out);
        Changed = true;
      }
      if (!(In == LiveIn[B])) {
        LiveIn[B] = std::move(In);
        Changed = true;
      }
    }
  }
}

void Liveness::applyTransfer(unsigned Block, unsigned Index,
                             DynBitset &Live) const {
  const Instr &I = F.Blocks[Block]->Instrs[Index];
  if (I.Dst != NoVReg)
    Live.reset(static_cast<size_t>(I.Dst));
  std::vector<VReg> Uses;
  I.collectUses(Uses);
  for (VReg R : Uses)
    Live.set(static_cast<size_t>(R));
  if (Extra) {
    auto It = Extra->find({Block, Index});
    if (It != Extra->end())
      for (VReg R : It->second)
        Live.set(static_cast<size_t>(R));
  }
}

DynBitset Liveness::liveBefore(unsigned Block, unsigned Index) const {
  const BasicBlock &BB = *F.Blocks[Block];
  DynBitset Live = LiveOut[Block];
  for (size_t I = BB.Instrs.size(); I-- > Index;)
    applyTransfer(Block, static_cast<unsigned>(I), Live);
  return Live;
}
