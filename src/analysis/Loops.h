//===- analysis/Loops.h - Natural loop detection ----------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop discovery for the loop optimizations (LICM, strength
/// reduction) and for §5.3's rule that every loop without a guaranteed
/// gc-point receives a poll.  The front end produces reducible CFGs, so back
/// edges found by DFS identify natural loops.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_ANALYSIS_LOOPS_H
#define MGC_ANALYSIS_LOOPS_H

#include "ir/IR.h"
#include "support/DynBitset.h"

#include <vector>

namespace mgc {
namespace analysis {

struct Loop {
  unsigned Header = 0;
  std::vector<unsigned> Latches; ///< Sources of back edges into Header.
  DynBitset Blocks;              ///< Body including the header.
  int Parent = -1;               ///< Index of the innermost enclosing loop.
  unsigned Depth = 1;

  bool contains(unsigned Block) const { return Blocks.test(Block); }
};

class LoopInfo {
public:
  explicit LoopInfo(const ir::Function &F);

  const std::vector<Loop> &loops() const { return Loops; }

  /// The innermost loop containing \p Block, or -1.
  int innermostLoop(unsigned Block) const { return InnermostLoop[Block]; }

private:
  std::vector<Loop> Loops;
  std::vector<int> InnermostLoop;
};

/// Ensures the loop has a preheader: a block that is the unique non-loop
/// predecessor of the header, ending in an unconditional jump to it.
/// Creates one (appending a block and rewriting edges) when needed.
/// Invalidates LoopInfo; returns the preheader's block id.
unsigned ensurePreheader(ir::Function &F, const Loop &L);

} // namespace analysis
} // namespace mgc

#endif // MGC_ANALYSIS_LOOPS_H
