//===- analysis/Derivations.h - Derived-value dataflow ----------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward dataflow computing, at every program point, how each live
/// derived value was derived: a signed multiset of *non-derived* base vregs
/// (Tidy heap pointers, IncomingAddr VAR parameters, or FrameAddr values)
/// plus an implicit pointer-free remainder E, exactly the model of §3:
///
///     a  =  Σ pi  −  Σ qj  +  E
///
/// Chained derivations collapse onto their ultimate bases (so the strength
/// reduction self-update `p := p + 4` keeps base A), and DeriveDiff unions
/// negated bases (double indexing yields {+B, −A}).  When different
/// derivations of the same vreg merge at a join point the state becomes
/// Ambiguous, listing every alternative — the trigger for the paper's path
/// variables or path splitting (§4).
///
//===----------------------------------------------------------------------===//

#ifndef MGC_ANALYSIS_DERIVATIONS_H
#define MGC_ANALYSIS_DERIVATIONS_H

#include "ir/IR.h"

#include <map>
#include <string>
#include <vector>

namespace mgc {
namespace analysis {

/// A signed multiset of base vregs.  Coefficients are small integers
/// (almost always ±1); entries are sorted by vreg and never zero.
struct Derivation {
  std::vector<std::pair<ir::VReg, int>> Bases;

  void add(ir::VReg R, int Coeff);
  void addAll(const Derivation &O, int Sign);
  bool operator==(const Derivation &O) const { return Bases == O.Bases; }
  bool operator<(const Derivation &O) const { return Bases < O.Bases; }
  std::string str() const;
};

/// The abstract state of one derived vreg at a program point.
struct DerivState {
  enum class Kind {
    Unknown,   ///< Not yet defined on this path.
    Single,    ///< One derivation reaches.
    Ambiguous, ///< Multiple distinct derivations reach (§4).
  };
  Kind K = Kind::Unknown;
  Derivation D;                 ///< Single.
  std::vector<Derivation> Alts; ///< Ambiguous (sorted, deduplicated).

  bool operator==(const DerivState &O) const {
    return K == O.K && D == O.D && Alts == O.Alts;
  }

  /// All base vregs across all alternatives.
  std::vector<ir::VReg> baseVRegs() const;
};

/// Per-vreg derivation states; only Derived-kind vregs appear.
using DerivMap = std::map<ir::VReg, DerivState>;

class DerivationAnalysis {
public:
  explicit DerivationAnalysis(const ir::Function &F);

  const DerivMap &blockIn(unsigned Block) const { return In[Block]; }

  /// The state map immediately before instruction \p Index of \p Block.
  DerivMap stateBefore(unsigned Block, unsigned Index) const;

  /// Applies one instruction's effect to \p State (public so clients can
  /// walk a block incrementally).
  static void transfer(const ir::Function &F, const ir::Instr &I,
                       DerivMap &State);

  /// The instruction-level extra-uses map for Liveness implementing the
  /// dead-base rule: any instruction using a derived vreg also uses that
  /// vreg's bases (as derived at that point).
  std::map<std::pair<unsigned, unsigned>, std::vector<ir::VReg>>
  computeExtraUses() const;

private:
  static void join(DerivMap &Into, const DerivMap &From, bool &Changed);

  const ir::Function &F;
  std::vector<DerivMap> In;
};

} // namespace analysis
} // namespace mgc

#endif // MGC_ANALYSIS_DERIVATIONS_H
