//===- fuzz/Generator.cpp - Random MG program generator -------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"
#include "fuzz/Rng.h"

#include <set>

using namespace mgc;
using namespace mgc::fuzz;

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

void indent(std::string &Out, int N) { Out.append(N * 2, ' '); }

void renderBlock(const std::vector<GStmt> &B, int In, std::string &Out);

void renderStmt(const GStmt &S, int In, std::string &Out) {
  switch (S.K) {
  case GStmt::Text:
    indent(Out, In);
    Out += S.Line;
    break;
  case GStmt::For:
    indent(Out, In);
    Out += "FOR " + S.Var + " := " + std::to_string(S.From) + " TO ";
    Out += S.BoundExpr.empty() ? std::to_string(S.Bound) : S.BoundExpr;
    Out += " DO\n";
    renderBlock(S.Body, In + 1, Out);
    Out += "\n";
    indent(Out, In);
    Out += "END";
    break;
  case GStmt::While:
    indent(Out, In);
    Out += "WHILE " + S.Cond + " DO\n";
    renderBlock(S.Body, In + 1, Out);
    Out += "\n";
    indent(Out, In);
    Out += "END";
    break;
  case GStmt::If:
    indent(Out, In);
    Out += "IF " + S.Cond + " THEN\n";
    renderBlock(S.Body, In + 1, Out);
    Out += "\n";
    if (!S.Else.empty()) {
      indent(Out, In);
      Out += "ELSE\n";
      renderBlock(S.Else, In + 1, Out);
      Out += "\n";
    }
    indent(Out, In);
    Out += "END";
    break;
  case GStmt::With:
    indent(Out, In);
    Out += "WITH " + S.Var + " = " + S.Target + " DO\n";
    renderBlock(S.Body, In + 1, Out);
    Out += "\n";
    indent(Out, In);
    Out += "END";
    break;
  }
}

void renderBlock(const std::vector<GStmt> &B, int In, std::string &Out) {
  if (B.empty()) {
    // A reduced-away body: keep the block syntactically valid.
    indent(Out, In);
    Out += "sink := sink";
    return;
  }
  for (size_t I = 0; I != B.size(); ++I) {
    if (I)
      Out += ";\n";
    renderStmt(B[I], In, Out);
  }
}

} // namespace

std::string GProgram::render() const {
  std::string Out;
  const char *Sep = Compact ? "" : "\n";
  Out += "MODULE Fz;\n";
  if (Comment)
    Out += "(* generated: mgc-fuzz seed " + std::to_string(Seed) + " *)\n";
  Out += Sep;
  if (!TypeLines.empty()) {
    Out += "TYPE\n";
    for (const std::string &T : TypeLines)
      Out += "  " + T + "\n";
  }
  if (!VarLines.empty()) {
    Out += Sep;
    Out += "VAR ";
    for (size_t I = 0; I != VarLines.size(); ++I) {
      if (I)
        Out += "    ";
      Out += VarLines[I] + ";\n";
    }
  }
  for (const GProc &P : Procs) {
    Out += Sep;
    Out += "PROCEDURE " + P.Name + P.Signature + ";\n";
    if (!P.VarLines.empty()) {
      Out += "VAR ";
      for (size_t I = 0; I != P.VarLines.size(); ++I) {
        if (I)
          Out += "; ";
        Out += P.VarLines[I];
      }
      Out += ";\n";
    }
    Out += "BEGIN\n";
    renderBlock(P.Body, 1, Out);
    Out += "\nEND " + P.Name + ";\n";
  }
  Out += Sep;
  Out += "BEGIN\n";
  renderBlock(Main, 1, Out);
  Out += "\nEND Fz.\n";
  return Out;
}

bool GProgram::hasProc(const std::string &Name) const {
  for (const GProc &P : Procs)
    if (P.Name == Name)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Procedure templates
//===----------------------------------------------------------------------===//

namespace {

const char *Mod = "1000000007";

GStmt forStmt(std::string Var, long From, long Bound,
              std::vector<GStmt> Body) {
  GStmt S;
  S.K = GStmt::For;
  S.Var = std::move(Var);
  S.From = From;
  S.Bound = Bound;
  S.Body = std::move(Body);
  return S;
}

GStmt forExpr(std::string Var, long From, std::string BoundExpr,
              std::vector<GStmt> Body) {
  GStmt S = forStmt(std::move(Var), From, 0, std::move(Body));
  S.BoundExpr = std::move(BoundExpr);
  return S;
}

GStmt whileStmt(std::string Cond, std::vector<GStmt> Body) {
  GStmt S;
  S.K = GStmt::While;
  S.Cond = std::move(Cond);
  S.Body = std::move(Body);
  return S;
}

GStmt ifStmt(std::string Cond, std::vector<GStmt> Then,
             std::vector<GStmt> Else = {}) {
  GStmt S;
  S.K = GStmt::If;
  S.Cond = std::move(Cond);
  S.Body = std::move(Then);
  S.Else = std::move(Else);
  return S;
}

GStmt withStmt(std::string Alias, std::string Target,
               std::vector<GStmt> Body) {
  GStmt S;
  S.K = GStmt::With;
  S.Var = std::move(Alias);
  S.Target = std::move(Target);
  S.Body = std::move(Body);
  return S;
}

#define TXT GStmt::text

/// BuildList(n): a prepend-only Cell chain (acyclic along `next`).
GProc buildListProc() {
  GProc P;
  P.Name = "BuildList";
  P.Signature = "(n: INTEGER): Cell";
  P.VarLines = {"l, c: Cell", "i: INTEGER"};
  P.Body.push_back(TXT("l := NIL"));
  P.Body.push_back(forExpr("i", 1, "n",
                           {TXT("c := NEW(Cell)"), TXT("c^.v := i"),
                            TXT("c^.next := l"), TXT("l := c")}));
  P.Body.push_back(TXT("RETURN l"));
  return P;
}

/// SumList(l): walks the chain with a WITH-bound interior pointer held
/// live across an allocation (the derived value must be un/re-derived at
/// every stress collection).
GProc sumListProc() {
  GProc P;
  P.Name = "SumList";
  P.Signature = "(l: Cell): INTEGER";
  P.VarLines = {"s: INTEGER", "t: Cell"};
  P.Body.push_back(TXT("s := 0"));
  P.Body.push_back(whileStmt(
      "l # NIL",
      {withStmt("w", "l^.v",
                {TXT("t := NEW(Cell)"), TXT("t^.v := w"),
                 TXT(std::string("s := (s + w + t^.v) MOD ") + Mod)}),
       TXT("l := l^.next")}));
  P.Body.push_back(TXT("RETURN s"));
  return P;
}

/// Fill(a): writes every element of an open int array.
GProc fillProc() {
  GProc P;
  P.Name = "Fill";
  P.Signature = "(a: IArr)";
  P.VarLines = {"i: INTEGER"};
  P.Body.push_back(
      forExpr("i", 0, "NUMBER(a) - 1", {TXT("a[i] := i * 3 + 1")}));
  return P;
}

/// SumArr(a): element alias live across an allocation on every iteration
/// (the ChurnSweep pattern — a derived pointer crossing gc-points in a
/// loop whose back edge re-derives it).
GProc sumArrProc() {
  GProc P;
  P.Name = "SumArr";
  P.Signature = "(a: IArr): INTEGER";
  P.VarLines = {"s, i: INTEGER"};
  P.Body.push_back(TXT("s := 0"));
  P.Body.push_back(forExpr(
      "i", 0, "NUMBER(a) - 1",
      {withStmt("e", "a[i]",
                {TXT("gl := NEW(Cell)"), TXT("gl^.v := e"),
                 TXT(std::string("s := (s + e + gl^.v) MOD ") + Mod)})}));
  P.Body.push_back(TXT("RETURN s"));
  return P;
}

/// MakeTree(d): recursive tree of branching factor \p Branch over an open
/// kids array; every node allocates.
GProc makeTreeProc(long Branch) {
  GProc P;
  P.Name = "MakeTree";
  P.Signature = "(d: INTEGER): Node";
  P.VarLines = {"n: Node", "i: INTEGER"};
  P.Body.push_back(TXT("n := NEW(Node)"));
  P.Body.push_back(TXT("n^.value := d"));
  P.Body.push_back(ifStmt(
      "d > 0",
      {TXT("n^.kids := NEW(Kids, " + std::to_string(Branch) + ")"),
       forStmt("i", 0, Branch - 1, {TXT("n^.kids[i] := MakeTree(d - 1)")})},
      {TXT("n^.kids := NIL")}));
  P.Body.push_back(TXT("RETURN n"));
  return P;
}

GProc countTreeProc() {
  GProc P;
  P.Name = "CountTree";
  P.Signature = "(n: Node): INTEGER";
  P.VarLines = {"i, total: INTEGER"};
  P.Body.push_back(ifStmt("n = NIL", {TXT("RETURN 0")}));
  P.Body.push_back(TXT("total := 1"));
  P.Body.push_back(
      ifStmt("n^.kids # NIL",
             {forExpr("i", 0, "NUMBER(n^.kids) - 1",
                      {TXT("total := total + CountTree(n^.kids[i])")})}));
  P.Body.push_back(TXT("RETURN total"));
  return P;
}

/// LinkPairs(n): prepends under a header record.  `left` stays acyclic
/// (the walked field); `right` carries a back edge that is never walked.
/// In generational mode `h^.left := p` is an old→young store once `h`
/// has been promoted, exercising the write barrier + remembered set.
GProc linkPairsProc() {
  GProc P;
  P.Name = "LinkPairs";
  P.Signature = "(n: INTEGER): Pair";
  P.VarLines = {"h, p: Pair", "i: INTEGER"};
  P.Body.push_back(TXT("h := NEW(Pair)"));
  P.Body.push_back(TXT("h^.a := 1"));
  P.Body.push_back(forExpr("i", 1, "n",
                           {TXT("p := NEW(Pair)"), TXT("p^.a := i"),
                            TXT("p^.b := i * 2"), TXT("p^.left := h^.left"),
                            TXT("p^.right := h"), TXT("h^.left := p")}));
  P.Body.push_back(TXT("RETURN h"));
  return P;
}

GProc walkPairsProc() {
  GProc P;
  P.Name = "WalkPairs";
  P.Signature = "(p: Pair): INTEGER";
  P.VarLines = {"s: INTEGER"};
  P.Body.push_back(TXT("s := 0"));
  P.Body.push_back(
      whileStmt("p # NIL",
                {TXT(std::string("s := (s + p^.a + p^.b) MOD ") + Mod),
                 TXT("p := p^.left")}));
  P.Body.push_back(TXT("RETURN s"));
  return P;
}

/// Bump(VAR x, n): a VAR parameter (pointer into the caller's frame or
/// the global area) live across an allocation.
GProc bumpProc() {
  GProc P;
  P.Name = "Bump";
  P.Signature = "(VAR x: INTEGER; n: INTEGER)";
  P.VarLines = {"c: Cell"};
  P.Body.push_back(TXT("c := NEW(Cell)"));
  P.Body.push_back(TXT("c^.v := n"));
  P.Body.push_back(TXT(std::string("x := (x + c^.v) MOD ") + Mod));
  return P;
}

/// Use(x): allocates, so every call site is a gc-point (under stress,
/// every call collects).
GProc useProc() {
  GProc P;
  P.Name = "Use";
  P.Signature = "(x: INTEGER): INTEGER";
  P.VarLines = {"junk: FArr"};
  P.Body.push_back(TXT("junk := NEW(FArr)"));
  P.Body.push_back(TXT("RETURN x"));
  return P;
}

/// Work(inv, p, q): the §4 diamond — after optimization the element
/// address is ambiguous between bases p and q, forcing a path variable
/// (or duplicated loops under --split).
GProc workProc() {
  GProc P;
  P.Name = "Work";
  P.Signature = "(inv: BOOLEAN; p, q: FArr): INTEGER";
  P.VarLines = {"i, s, v: INTEGER"};
  P.Body.push_back(TXT("s := 0"));
  P.Body.push_back(
      forStmt("i", 1, 8,
              {ifStmt("inv", {TXT("v := p[i]")}, {TXT("v := q[i]")}),
               TXT(std::string("s := (s + Use(v)) MOD ") + Mod)}));
  P.Body.push_back(TXT("RETURN s"));
  return P;
}

/// GrowLeak(l, n): prepends n fresh cells onto an existing chain and
/// returns the new head.  Called per request on the global `lk`, which is
/// never trimmed: its NEW(Cell) is the injected leak site the online
/// growth detector must flag.
GProc growLeakProc() {
  GProc P;
  P.Name = "GrowLeak";
  P.Signature = "(l: Cell; n: INTEGER): Cell";
  P.VarLines = {"c: Cell", "i: INTEGER"};
  P.Body.push_back(forExpr("i", 1, "n",
                           {TXT("c := NEW(Cell)"), TXT("c^.v := i"),
                            TXT("c^.next := l"), TXT("l := c")}));
  P.Body.push_back(TXT("RETURN l"));
  return P;
}

/// Spin(): allocation-free spin loop on the `done` flag (§5.3 — its loop
/// poll is what lets the rendezvous complete in threaded mode).
GProc spinProc() {
  GProc P;
  P.Name = "Spin";
  P.Signature = "()";
  P.VarLines = {"i: INTEGER"};
  P.Body.push_back(TXT("i := 0"));
  P.Body.push_back(whileStmt(
      "NOT done", {TXT("INC(i)"), ifStmt("i > 1000000", {TXT("i := 0")})}));
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// Program generation
//===----------------------------------------------------------------------===//

namespace {

/// Tracks which globals hold a non-NIL value on every path so far.
struct InitState {
  bool Gl = false, Ga = false, Gn = false, Gp = false, Fa = false;
};

std::string accum(Rng &R) {
  static const char *Ts[] = {"t0", "t1", "t2", "t3"};
  return Ts[R.next() % 4];
}

} // namespace

GProgram fuzz::generateProgram(uint64_t Seed) {
  Rng R(Seed);
  GProgram P;
  P.Seed = Seed;

  P.TypeLines = {
      "Cell = REF CellRec;",
      "CellRec = RECORD v: INTEGER; next: Cell END;",
      "Node = REF NodeRec;",
      "Kids = REF ARRAY OF Node;",
      "NodeRec = RECORD value: INTEGER; kids: Kids END;",
      "IArr = REF ARRAY OF INTEGER;",
      "FArr = REF ARRAY [1..8] OF INTEGER;",
      "Pair = REF PairRec;",
      "PairRec = RECORD a, b: INTEGER; left, right: Pair END;",
      "SCache = REF ARRAY OF Cell;",
  };
  P.VarLines = {
      "sink, t0, t1, t2, t3: INTEGER",
      "gl, lk: Cell",
      "sc: SCache",
      "ga: IArr",
      "gn: Node",
      "gp: Pair",
      "fa, fb: FArr",
      "done: BOOLEAN",
  };

  P.HasSpin = R.pct(35);
  long Branch = R.range(2, 3);

  std::set<std::string> Needed;
  InitState Init;
  unsigned LoopIdx = 0;

  int NumActions = static_cast<int>(R.range(5, 10));
  for (int A = 0; A != NumActions; ++A) {
    switch (R.range(0, 6)) {
    case 0: { // List build + WITH-across-alloc walk.
      long K = R.range(3, 9);
      std::string T1 = accum(R);
      P.Main.push_back(TXT("gl := BuildList(" + std::to_string(K) + ")"));
      P.Main.push_back(
          TXT(T1 + " := (" + T1 + " + SumList(gl)) MOD " + Mod));
      Needed.insert("BuildList");
      Needed.insert("SumList");
      Init.Gl = true;
      P.Cov.RefChains = P.Cov.WithBinding = P.Cov.DerivedAcrossCall = true;
      break;
    }
    case 1: { // Open int array churn.
      long K = R.range(4, 12);
      P.Main.push_back(TXT("ga := NEW(IArr, " + std::to_string(K) + ")"));
      std::string T1 = accum(R);
      P.Main.push_back(TXT("Fill(ga)"));
      P.Main.push_back(
          TXT(T1 + " := (" + T1 + " + SumArr(ga)) MOD " + Mod));
      Needed.insert("Fill");
      Needed.insert("SumArr");
      Init.Ga = true;
      P.Cov.OpenArrays = P.Cov.WithBinding = P.Cov.DerivedAcrossCall = true;
      break;
    }
    case 2: { // Recursive tree build/count.
      long D = R.range(2, 4);
      std::string T1 = accum(R);
      P.Main.push_back(TXT("gn := MakeTree(" + std::to_string(D) + ")"));
      P.Main.push_back(
          TXT(T1 + " := (" + T1 + " + CountTree(gn)) MOD " + Mod));
      Needed.insert("MakeTree");
      Needed.insert("CountTree");
      Init.Gn = true;
      P.Cov.Recursion = P.Cov.OpenArrays = true;
      break;
    }
    case 3: { // Pair chain: old→young stores under gen-gc.
      long K = R.range(3, 10);
      std::string T1 = accum(R);
      P.Main.push_back(TXT("gp := LinkPairs(" + std::to_string(K) + ")"));
      P.Main.push_back(
          TXT(T1 + " := (" + T1 + " + WalkPairs(gp)) MOD " + Mod));
      Needed.insert("LinkPairs");
      Needed.insert("WalkPairs");
      Init.Gp = true;
      P.Cov.RefChains = true;
      break;
    }
    case 4: { // VAR parameter across allocation.
      long K = R.range(1, 99);
      P.Main.push_back(
          TXT("Bump(" + accum(R) + ", " + std::to_string(K) + ")"));
      Needed.insert("Bump");
      P.Cov.VarParams = true;
      break;
    }
    case 5: { // §4 ambiguous diamond.
      long M1 = R.range(1, 9), M2 = R.range(1, 9);
      std::string IV = "i" + std::to_string(LoopIdx++);
      P.Main.push_back(TXT("fa := NEW(FArr)"));
      P.Main.push_back(TXT("fb := NEW(FArr)"));
      P.Main.push_back(
          forStmt(IV, 1, 8,
                  {TXT("fa[" + IV + "] := " + IV + " * " +
                       std::to_string(M1)),
                   TXT("fb[" + IV + "] := " + IV + " * " +
                       std::to_string(M2))}));
      P.Main.push_back(
          TXT("sink := (sink + Work(TRUE, fa, fb) * 1000 + "
              "Work(FALSE, fa, fb)) MOD " +
              std::string(Mod)));
      Needed.insert("Use");
      Needed.insert("Work");
      Init.Fa = true;
      P.Cov.Ambiguous = true;
      break;
    }
    default: { // Free-form loop over scalar state + optional heap traffic.
      std::string IV = "i" + std::to_string(LoopIdx++);
      long K = R.range(2, 6);
      std::vector<GStmt> Body;
      int NS = static_cast<int>(R.range(1, 4));
      for (int S = 0; S != NS; ++S) {
        switch (R.range(0, 4)) {
        case 0: {
          std::string T1 = accum(R);
          Body.push_back(TXT(T1 + " := (" + T1 + " + " + IV + " * " +
                             std::to_string(R.range(1, 13)) + " + " +
                             std::to_string(R.range(0, 99)) + ") MOD " +
                             Mod));
          break;
        }
        case 1: {
          std::string T1 = accum(R), T2 = accum(R);
          Body.push_back(ifStmt(T1 + " MOD 2 = 0",
                                {TXT(T1 + " := (" + T1 + " + 1) MOD " + Mod)},
                                {TXT(T2 + " := (" + T2 + " + " + IV +
                                     ") MOD " + Mod)}));
          break;
        }
        case 2: {
          Body.push_back(TXT("gl := BuildList(" + IV + ")"));
          Needed.insert("BuildList");
          Init.Gl = true;
          P.Cov.RefChains = true;
          break;
        }
        case 3:
          if (Init.Gl) {
            std::string T1 = accum(R);
            Body.push_back(
                TXT(T1 + " := (" + T1 + " + SumList(gl)) MOD " + Mod));
            Needed.insert("SumList");
            P.Cov.WithBinding = P.Cov.DerivedAcrossCall = true;
            break;
          }
          [[fallthrough]];
        default: { // Nested scalar loop.
          std::string IV2 = "i" + std::to_string(LoopIdx++);
          std::string T1 = accum(R);
          Body.push_back(forStmt(IV2, 1, R.range(2, 5),
                                 {TXT(T1 + " := (" + T1 + " + " + IV +
                                      " * " + IV2 + ") MOD " + Mod)}));
          break;
        }
        }
      }
      P.Main.push_back(forStmt(IV, 1, K, std::move(Body)));
      break;
    }
    }
  }

  // Long-running-server bias: a request-loop skeleton feeding a session
  // cache.  Each iteration builds a fresh request graph, parks it in a
  // long-lived slot (old-to-young stores under gen-gc once the cache is
  // promoted), periodically evicts, and marks the request boundary with
  // ReqDone() — the steady-state shape the workload harness measures and
  // the oracle's mid-run invariant cell snapshots.
  if (R.pct(40)) {
    long Req = R.range(8, 24);
    long Slots = R.range(3, 7);
    long Mult = 2 * R.range(1, 3) + 1;
    long Spread = R.range(3, 7);
    long Churn = R.range(2, 4);
    std::string IV = "i" + std::to_string(LoopIdx++);
    std::vector<GStmt> ReqBody = {
        TXT("gl := BuildList(1 + ((" + IV + " * " + std::to_string(Mult) +
            ") MOD " + std::to_string(Spread) + "))"),
        TXT("sc[" + IV + " MOD " + std::to_string(Slots) + "] := gl"),
        TXT(std::string("sink := (sink + SumList(gl)) MOD ") + Mod),
        ifStmt(IV + " MOD " + std::to_string(Churn) + " = 0",
               {TXT("sc[(" + IV + " * 3) MOD " + std::to_string(Slots) +
                    "] := NIL")})};
    // Injected-leak bias: grow a global-rooted chain every request and
    // never trim it — a slow, steady leak under the request loop, the
    // exact shape the online growth detector exists to flag.
    if (R.pct(30)) {
      long Grow = R.range(2, 5);
      ReqBody.push_back(
          TXT("lk := GrowLeak(lk, " + std::to_string(Grow) + ")"));
      Needed.insert("GrowLeak");
      P.Cov.LeakBias = true;
    }
    ReqBody.push_back(TXT("ReqDone()"));
    P.Main.push_back(TXT("sc := NEW(SCache, " + std::to_string(Slots) + ")"));
    P.Main.push_back(forStmt(IV, 1, Req, std::move(ReqBody)));
    Needed.insert("BuildList");
    Needed.insert("SumList");
    Init.Gl = true;
    P.Cov.ServerLoop = P.Cov.RefChains = true;
    P.Cov.WithBinding = P.Cov.DerivedAcrossCall = true;
  }

  if (P.HasSpin) {
    Needed.insert("Spin");
    P.Cov.Threads = true;
    // Nothing may allocate after this point: the spin thread exits as
    // soon as it observes the flag, and gc counts must stay deterministic.
    P.Main.push_back(TXT("done := TRUE"));
  }
  P.Main.push_back(
      TXT("PutInt((sink + t0 + t1 + t2 + t3) MOD " + std::string(Mod) + ")"));
  P.Main.push_back(TXT("PutChar(32)"));
  P.Main.push_back(TXT("PutInt(t0 + t1)"));
  P.Main.push_back(TXT("PutChar(32)"));
  P.Main.push_back(TXT("PutInt(t2 + t3)"));
  P.Main.push_back(TXT("PutLn()"));

  // Emit needed procedures in a canonical order (forward references are
  // legal in MG, so order is cosmetic but must be deterministic).
  const char *Order[] = {"BuildList", "SumList",   "GrowLeak",  "Fill",
                         "SumArr",    "MakeTree",  "CountTree", "LinkPairs",
                         "WalkPairs", "Bump",      "Use",       "Work",
                         "Spin"};
  for (const char *Name : Order) {
    if (!Needed.count(Name))
      continue;
    std::string N = Name;
    if (N == "BuildList")
      P.Procs.push_back(buildListProc());
    else if (N == "SumList")
      P.Procs.push_back(sumListProc());
    else if (N == "GrowLeak")
      P.Procs.push_back(growLeakProc());
    else if (N == "Fill")
      P.Procs.push_back(fillProc());
    else if (N == "SumArr")
      P.Procs.push_back(sumArrProc());
    else if (N == "MakeTree")
      P.Procs.push_back(makeTreeProc(Branch));
    else if (N == "CountTree")
      P.Procs.push_back(countTreeProc());
    else if (N == "LinkPairs")
      P.Procs.push_back(linkPairsProc());
    else if (N == "WalkPairs")
      P.Procs.push_back(walkPairsProc());
    else if (N == "Bump")
      P.Procs.push_back(bumpProc());
    else if (N == "Use")
      P.Procs.push_back(useProc());
    else if (N == "Work")
      P.Procs.push_back(workProc());
    else if (N == "Spin")
      P.Procs.push_back(spinProc());
  }
  if (P.HasSpin && !P.hasProc("Spin"))
    P.Procs.push_back(spinProc());

  return P;
}
