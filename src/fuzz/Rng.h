//===- fuzz/Rng.h - Deterministic fuzzer RNG --------------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small splitmix64-based generator.  The fuzzer must be byte-for-byte
/// deterministic across runs and platforms, so we avoid <random> (whose
/// distributions are implementation-defined) and derive everything from
/// integer arithmetic on a 64-bit state.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_FUZZ_RNG_H
#define MGC_FUZZ_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace mgc {
namespace fuzz {

class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed + 0x9E3779B97F4A7C15ull) {}

  /// Next raw 64-bit value (splitmix64).
  uint64_t next() {
    uint64_t Z = (State += 0x9E3779B97F4A7C15ull);
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi);
    uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
    return Lo + static_cast<int64_t>(next() % Span);
  }

  /// True with probability Percent/100.
  bool pct(unsigned Percent) { return next() % 100 < Percent; }

  /// Uniformly chosen element of \p V (must be non-empty).
  template <typename T> const T &pick(const std::vector<T> &V) {
    assert(!V.empty());
    return V[next() % V.size()];
  }

private:
  uint64_t State;
};

} // namespace fuzz
} // namespace mgc

#endif // MGC_FUZZ_RNG_H
