//===- fuzz/Reducer.cpp - Greedy test-case reducer ------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reducer.h"

#include <cctype>

using namespace mgc;
using namespace mgc::fuzz;

namespace {

/// All statement blocks of \p P in deterministic BFS order (outermost
/// first): Main, each procedure body, then nested bodies.
std::vector<std::vector<GStmt> *> collectBlocks(GProgram &P) {
  std::vector<std::vector<GStmt> *> Out;
  Out.push_back(&P.Main);
  for (GProc &Pr : P.Procs)
    Out.push_back(&Pr.Body);
  for (size_t I = 0; I != Out.size(); ++I)
    for (GStmt &S : *Out[I]) {
      if (!S.Body.empty())
        Out.push_back(&S.Body);
      if (!S.Else.empty())
        Out.push_back(&S.Else);
    }
  return Out;
}

struct Cand {
  enum Kind {
    DropStmt,
    ShrinkFor1,
    ShrinkForLast,
    ShrinkForHalf,
    IfThen,
    IfElse,
    WhileOnce,
    InlineWith,
    ForOnce,
    DropProc,
    DropVar,
    DropType,
    DropComment,
    CompactLayout,
  } K;
  size_t A = 0; ///< Block ordinal / proc index / var index.
  size_t B = 0; ///< Statement index within block.
};

/// True if \p Word occurs in \p Text as a whole identifier.
bool usesWord(const std::string &Text, const std::string &Word) {
  size_t Pos = 0;
  auto IsIdent = [](char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
  };
  while ((Pos = Text.find(Word, Pos)) != std::string::npos) {
    bool L = Pos > 0 && IsIdent(Text[Pos - 1]);
    bool R = Pos + Word.size() < Text.size() && IsIdent(Text[Pos + Word.size()]);
    if (!L && !R)
      return true;
    Pos += Word.size();
  }
  return false;
}

/// Replaces whole-identifier occurrences of \p From with \p To.
std::string substWord(const std::string &Text, const std::string &From,
                      const std::string &To) {
  std::string Out;
  size_t Pos = 0, Prev = 0;
  auto IsIdent = [](char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
  };
  while ((Pos = Text.find(From, Prev)) != std::string::npos) {
    bool L = Pos > 0 && IsIdent(Text[Pos - 1]);
    bool R = Pos + From.size() < Text.size() && IsIdent(Text[Pos + From.size()]);
    Out += Text.substr(Prev, Pos - Prev);
    if (!L && !R) {
      Out += To;
    } else {
      Out += From;
    }
    Prev = Pos + From.size();
  }
  Out += Text.substr(Prev);
  return Out;
}

void substStmt(GStmt &S, const std::string &From, const std::string &To) {
  S.Line = substWord(S.Line, From, To);
  S.Cond = substWord(S.Cond, From, To);
  S.Target = substWord(S.Target, From, To);
  S.BoundExpr = substWord(S.BoundExpr, From, To);
  for (GStmt &C : S.Body)
    substStmt(C, From, To);
  for (GStmt &C : S.Else)
    substStmt(C, From, To);
}

/// The deterministic candidate list for the current program shape,
/// fastest-shrinking transformations first.
std::vector<Cand> enumerate(GProgram &P) {
  std::vector<Cand> C;
  std::vector<std::vector<GStmt> *> Blocks = collectBlocks(P);
  for (size_t B = 0; B != Blocks.size(); ++B)
    for (size_t I = 0; I != Blocks[B]->size(); ++I)
      C.push_back({Cand::DropStmt, B, I});
  for (size_t I = 0; I != P.Procs.size(); ++I)
    C.push_back({Cand::DropProc, I, 0});
  for (size_t B = 0; B != Blocks.size(); ++B)
    for (size_t I = 0; I != Blocks[B]->size(); ++I) {
      const GStmt &S = (*Blocks[B])[I];
      switch (S.K) {
      case GStmt::For:
        if (S.BoundExpr.empty() && S.Bound > S.From) {
          C.push_back({Cand::ShrinkFor1, B, I});
          C.push_back({Cand::ShrinkForLast, B, I});
          if (S.Bound - S.From >= 2)
            C.push_back({Cand::ShrinkForHalf, B, I});
        }
        if (S.BoundExpr.empty() && S.Bound == S.From)
          C.push_back({Cand::ForOnce, B, I});
        break;
      case GStmt::If:
        C.push_back({Cand::IfThen, B, I});
        if (!S.Else.empty())
          C.push_back({Cand::IfElse, B, I});
        break;
      case GStmt::While:
        C.push_back({Cand::WhileOnce, B, I});
        break;
      case GStmt::With:
        C.push_back({Cand::InlineWith, B, I});
        break;
      case GStmt::Text:
        break;
      }
    }
  for (size_t I = 0; I != P.VarLines.size(); ++I)
    C.push_back({Cand::DropVar, I, 0});
  for (size_t I = 0; I != P.TypeLines.size(); ++I)
    C.push_back({Cand::DropType, I, 0});
  if (P.Comment)
    C.push_back({Cand::DropComment, 0, 0});
  if (!P.Compact)
    C.push_back({Cand::CompactLayout, 0, 0});
  return C;
}

/// Applies \p C to a copy of \p P.  Returns false for candidates that are
/// knowably useless (e.g. dropping a procedure that is still referenced).
bool apply(const GProgram &P, const Cand &C, GProgram &Out) {
  Out = P;
  std::vector<std::vector<GStmt> *> Blocks = collectBlocks(Out);
  switch (C.K) {
  case Cand::DropStmt: {
    std::vector<GStmt> &B = *Blocks[C.A];
    B.erase(B.begin() + static_cast<long>(C.B));
    return true;
  }
  case Cand::ShrinkFor1:
    (*Blocks[C.A])[C.B].Bound = (*Blocks[C.A])[C.B].From;
    return true;
  case Cand::ShrinkForLast:
    (*Blocks[C.A])[C.B].From = (*Blocks[C.A])[C.B].Bound;
    return true;
  case Cand::ShrinkForHalf: {
    GStmt &S = (*Blocks[C.A])[C.B];
    S.Bound = S.From + (S.Bound - S.From) / 2;
    return true;
  }
  case Cand::IfThen: {
    std::vector<GStmt> &B = *Blocks[C.A];
    std::vector<GStmt> Body = B[C.B].Body;
    B.erase(B.begin() + static_cast<long>(C.B));
    B.insert(B.begin() + static_cast<long>(C.B), Body.begin(), Body.end());
    return true;
  }
  case Cand::IfElse: {
    std::vector<GStmt> &B = *Blocks[C.A];
    std::vector<GStmt> Body = B[C.B].Else;
    B.erase(B.begin() + static_cast<long>(C.B));
    B.insert(B.begin() + static_cast<long>(C.B), Body.begin(), Body.end());
    return true;
  }
  case Cand::WhileOnce: {
    std::vector<GStmt> &B = *Blocks[C.A];
    std::vector<GStmt> Body = B[C.B].Body;
    B.erase(B.begin() + static_cast<long>(C.B));
    B.insert(B.begin() + static_cast<long>(C.B), Body.begin(), Body.end());
    return true;
  }
  case Cand::ForOnce: {
    // Unroll a single-iteration FOR into its body with the index
    // replaced by its one value.
    std::vector<GStmt> &B = *Blocks[C.A];
    GStmt F = B[C.B];
    for (GStmt &S : F.Body)
      substStmt(S, F.Var, std::to_string(F.From));
    B.erase(B.begin() + static_cast<long>(C.B));
    B.insert(B.begin() + static_cast<long>(C.B), F.Body.begin(),
             F.Body.end());
    return true;
  }
  case Cand::InlineWith: {
    std::vector<GStmt> &B = *Blocks[C.A];
    GStmt W = B[C.B];
    for (GStmt &S : W.Body)
      substStmt(S, W.Var, W.Target);
    B.erase(B.begin() + static_cast<long>(C.B));
    B.insert(B.begin() + static_cast<long>(C.B), W.Body.begin(),
             W.Body.end());
    return true;
  }
  case Cand::DropProc: {
    std::string Name = Out.Procs[C.A].Name;
    Out.Procs.erase(Out.Procs.begin() + static_cast<long>(C.A));
    if (Name == "Spin")
      Out.HasSpin = false;
    // Useless if the procedure is still referenced anywhere.
    return !usesWord(Out.render(), Name);
  }
  case Cand::DropVar: {
    std::string Group = Out.VarLines[C.A];
    Out.VarLines.erase(Out.VarLines.begin() + static_cast<long>(C.A));
    // The group declares comma-separated names before the ':'.
    size_t Colon = Group.find(':');
    std::string Names = Group.substr(0, Colon);
    std::string Rendered = Out.render();
    size_t Pos = 0;
    while (Pos < Names.size()) {
      size_t End = Names.find(',', Pos);
      if (End == std::string::npos)
        End = Names.size();
      std::string N = Names.substr(Pos, End - Pos);
      while (!N.empty() && N.front() == ' ')
        N.erase(N.begin());
      while (!N.empty() && N.back() == ' ')
        N.pop_back();
      if (!N.empty() && usesWord(Rendered, N))
        return false;
      Pos = End + 1;
    }
    return true;
  }
  case Cand::DropType: {
    // Each type line declares exactly one name before " = ".  Dead type
    // declarations often reference each other (Pair = REF PairRec;
    // PairRec = RECORD ... right: Pair END), so dropping one line at a
    // time never succeeds; cascade-drop any line whose name becomes
    // unreferenced once its dependents are gone.
    std::string Line = Out.TypeLines[C.A];
    Out.TypeLines.erase(Out.TypeLines.begin() + static_cast<long>(C.A));
    std::string Name = Line.substr(0, Line.find(' '));
    bool Cascaded = true;
    while (Cascaded) {
      Cascaded = false;
      for (size_t J = 0; J != Out.TypeLines.size(); ++J) {
        GProgram Trial = Out;
        std::string L = Trial.TypeLines[J];
        Trial.TypeLines.erase(Trial.TypeLines.begin() +
                              static_cast<long>(J));
        if (!usesWord(Trial.render(), L.substr(0, L.find(' ')))) {
          Out = std::move(Trial);
          Cascaded = true;
          break;
        }
      }
    }
    return !usesWord(Out.render(), Name);
  }
  case Cand::DropComment:
    if (!Out.Comment)
      return false;
    Out.Comment = false;
    return true;
  case Cand::CompactLayout:
    // Blank separator lines carry no tokens; dropping them cannot change
    // the compiled program, but the oracle re-verifies anyway.
    if (Out.Compact)
      return false;
    Out.Compact = true;
    return true;
  }
  return false;
}

} // namespace

GProgram fuzz::reduceProgram(const GProgram &P, const FailPredicate &StillFails,
                             unsigned MaxTries, ReduceStats *Stats) {
  GProgram Current = P;
  ReduceStats Local;
  ReduceStats &S = Stats ? *Stats : Local;
  bool Progress = true;
  while (Progress && S.Tries < MaxTries) {
    Progress = false;
    std::vector<Cand> Cands = enumerate(Current);
    for (const Cand &C : Cands) {
      if (S.Tries >= MaxTries)
        break;
      GProgram Next;
      if (!apply(Current, C, Next))
        continue;
      ++S.Tries;
      if (StillFails(Next)) {
        Current = std::move(Next);
        ++S.Accepted;
        Progress = true;
        break; // restart enumeration on the smaller program
      }
    }
  }
  return Current;
}
