//===- fuzz/Oracle.h - Differential execution oracle ------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles one generated program at -O0 and -O2 and runs it under the
/// whole mode matrix — two-space, --gen-gc, path splitting, the reference
/// (walk-from-start) decoder, small-heap pressure, both dispatch tiers —
/// with --gc-crosscheck and gc stress on, plus a conservative-trace
/// superset check on the reference run.  Any divergence in program output,
/// exit status, or the stressed root/derived/frame counts between
/// equivalent configurations is a bug in the compiler, the tables, a
/// collector, or an execution tier.
///
/// Programs containing a server loop (ReqDone markers) additionally get a
/// steady-state cell check: a globals-only heap snapshot captured at a
/// fixed request ordinal must agree — node count, byte total, output
/// length — across every cell, including the heap-growth/nursery-auto
/// policy cell whose collection schedule differs from all the others.
///
/// The dispatch dimension is sampled two ways: the reference cell runs
/// the switch tier while every other cell defaults to threaded (so each
/// output/snapshot comparison already crosses the tiers), and two "twin"
/// cells re-run a stressed configuration under the other tier, where the
/// oracle requires *bit-identical* outcomes — output, instruction count,
/// and every table-driven statistic.
///
/// Every execution happens in a forked child process: a wrong table can
/// leave a stale root that the VM then dereferences as a raw host address,
/// so a genuinely broken configuration may segfault — the oracle reports
/// that as a divergence instead of dying with it.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_FUZZ_ORACLE_H
#define MGC_FUZZ_ORACLE_H

#include "driver/Compiler.h"
#include "gc/Collector.h"
#include "vm/VM.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mgc {
namespace fuzz {

/// One cell of the mode matrix.
struct RunSpec {
  std::string Name;
  driver::CompilerOptions CO;
  vm::VMOptions VO;
  gc::CollectorOptions GCO;
  bool SpawnSpin = false;        ///< Spawn the program's Spin() thread.
  bool ConservativeCheck = false; ///< Reference run only: superset check.
  /// Specs sharing a non-negative group id must agree exactly on
  /// {Collections, RootsTraced, DerivedAdjusted, FramesTraced} (the
  /// GenGC.StressedRootCountsMatchDefaultMode invariant).
  int StatsGroup = -1;
  bool IsRef = false;
  /// Name of a cell this one must match *bit-identically* (output, Instrs,
  /// and all table-driven stats): set on dispatch-tier twins, which differ
  /// from their partner only in the execution engine.
  std::string TwinOf;
  std::string CliFlags; ///< mgc flags reproducing this cell.
};

/// The matrix for one program.  \p HasSpin adds --threads + a spawned
/// spin thread to every cell.
std::vector<RunSpec> buildMatrix(bool HasSpin);

/// Result of one sandboxed execution.
struct RunOutcome {
  enum Status { Ok, RuntimeError, CompileError, Crashed };
  Status St = Crashed;
  int Signal = 0;      ///< Crashed: the fatal signal.
  std::string Out;     ///< Program output.
  std::string Error;   ///< Runtime/compile diagnostic.
  uint64_t Collections = 0, MinorCollections = 0, RootsTraced = 0,
           DerivedAdjusted = 0, FramesTraced = 0, WriteBarriersRun = 0,
           BytesCopied = 0, ObjectsCopied = 0, Instrs = 0;
  // Conservative superset check (reference run only).
  bool ConservativeViolation = false;
  uint64_t ConservativeReached = 0, PreciseLive = 0;
  // At-exit heap snapshot (every Ok run): the snapshot is captured and
  // validated in-process (precise recount + conservative superset, see
  // gc/Snapshot.h), and its node/byte totals must agree across every cell
  // of the matrix — exit-reachable state is collection-schedule
  // independent.
  bool SnapViolation = false;
  uint64_t SnapNodes = 0, SnapBytes = 0;
  std::string SnapError;
  // Mid-run steady-state snapshot, captured at the third ReqDone() marker
  // when the program contains a server loop.  The marker fires with
  // instruction counters synced and the heap in a normal mutator state, so
  // a globals-only snapshot there sees the same reachable graph in every
  // cell — the session cache at a fixed request ordinal is a pure function
  // of the program, not of the collection schedule.  Programs without
  // ReqDone leave all of this zero (trivially equal across cells).
  bool MidViolation = false;
  uint64_t MidRequests = 0, MidNodes = 0, MidBytes = 0, MidOutLen = 0;
  std::string MidError;
  // Online leak-detector flags, serialized as "site:slope:live:first;"
  // per flag in the tracer's (slope desc, site asc) order.  Every cell
  // runs the detector; dispatch twins must agree on the string
  // bit-identically (cells with different collection schedules
  // legitimately differ in sample timing, so only twins compare it).
  std::string LeakSummary;
  /// Sampling-profiler digest (obs::profileSummary): sample/weight/stack/
  /// alloc counts plus an FNV hash of the encoded profile body.  The
  /// profiler fires at deterministic instruction ordinals, so dispatch
  /// twins must reproduce the digest bit-identically; cells with different
  /// heaps or optimization levels legitimately differ.
  std::string ProfSummary;
};

/// Runs \p Prog under \p Spec in a forked child and collects the outcome.
RunOutcome runSandboxed(const vm::Program &Prog, const RunSpec &Spec);

struct OracleResult {
  bool Diverged = false;
  /// The reference configuration itself failed: the *generator* (or a
  /// reducer candidate) produced a bad program; not a compiler bug.
  bool RefFailed = false;
  std::string Report; ///< Deterministic description (empty when clean).
  std::vector<std::string> FailingConfigs;
};

/// Compiles (via driver::compileBatch) and runs \p Source through the
/// matrix, comparing every cell against the reference run.  With
/// \p FailFast the reducer's inner loop compiles configurations lazily
/// and returns at the first divergence (the report covers only what ran).
OracleResult checkSource(const std::string &Source, bool HasSpin,
                         bool FailFast = false);

} // namespace fuzz
} // namespace mgc

#endif // MGC_FUZZ_ORACLE_H
