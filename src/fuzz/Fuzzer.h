//===- fuzz/Fuzzer.h - Fuzzing campaign driver ------------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ties generator, oracle, and reducer into one campaign: for each seed in
/// [Seed, Seed+Count) generate a program, run it through the differential
/// matrix, and on divergence write the original source, the reduced
/// source, and a repro command file to the artifact directory.
///
/// Everything in FuzzSummary::Log and in the artifact files is a pure
/// function of the seed range — byte-identical across runs.  Wall-clock
/// timing lives only in FuzzSummary::Seconds (surfaced via the JSON
/// output), never in the log.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_FUZZ_FUZZER_H
#define MGC_FUZZ_FUZZER_H

#include <cstdint>
#include <string>

namespace mgc {
namespace fuzz {

struct FuzzOptions {
  uint64_t Seed = 1;
  unsigned Count = 100;
  std::string OutDir = "fuzz-artifacts";
  bool Reduce = true;            ///< Reduce diverging programs.
  bool DumpAll = false;          ///< Write every generated program.
  unsigned MaxReduceTries = 1500; ///< Oracle budget per reduction.
};

struct FuzzSummary {
  unsigned Programs = 0;
  unsigned Divergences = 0;
  /// Reference config failed: generator produced a bad program (counts
  /// against the generator, not the compiler).
  unsigned GeneratorDefects = 0;
  // Coverage counters: programs exercising each hard case.
  unsigned CovDerivedAcrossCall = 0;
  unsigned CovAmbiguous = 0;
  unsigned CovThreads = 0;
  unsigned CovOpenArrays = 0;
  unsigned CovWithBinding = 0;
  unsigned CovRecursion = 0;
  unsigned CovRefChains = 0;
  unsigned CovVarParams = 0;
  unsigned CovServerLoop = 0;
  unsigned CovLeakBias = 0;
  /// Deterministic campaign log (what mgc-fuzz prints).
  std::string Log;
  /// Wall-clock; JSON-only, never part of Log.
  double Seconds = 0;
};

/// Runs the campaign.  Artifacts go to Opts.OutDir (created on demand).
FuzzSummary runFuzz(const FuzzOptions &Opts);

/// Renders the BENCH_fuzz.json payload (programs/sec + coverage
/// fractions).
std::string summaryJson(const FuzzOptions &Opts, const FuzzSummary &S);

} // namespace fuzz
} // namespace mgc

#endif // MGC_FUZZ_FUZZER_H
