//===- fuzz/Oracle.cpp - Differential execution oracle --------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "gc/Snapshot.h"
#include "obs/HeapSnapshot.h"
#include "obs/Profile.h"
#include "obs/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace mgc;
using namespace mgc::fuzz;

//===----------------------------------------------------------------------===//
// Matrix
//===----------------------------------------------------------------------===//

std::vector<RunSpec> fuzz::buildMatrix(bool HasSpin) {
  std::vector<RunSpec> M;
  auto Base = [&](const char *Name) {
    RunSpec S;
    S.Name = Name;
    S.GCO.CrossCheck = true;
    S.VO.InstrBudget = 50'000'000;
    if (HasSpin) {
      S.CO.ThreadedPolls = true;
      S.SpawnSpin = true;
    }
    return S;
  };

  // Reference: unoptimized, roomy heap, no stress — collections are rare,
  // so even a program compiled with broken tables usually completes here.
  // Also carries the conservative-trace superset check.  The reference
  // deliberately runs the *switch* dispatch tier while every other cell
  // keeps the threaded default, so each output/snapshot comparison below
  // is also a cross-tier check.
  {
    RunSpec S = Base("ref-O0-two");
    S.CO.OptLevel = 0;
    S.VO.HeapBytes = 8u << 20;
    S.VO.Dispatch = vm::DispatchTier::Switch;
    S.ConservativeCheck = true;
    S.IsRef = true;
    S.CliFlags = "--noopt --heap 8388608 --gc-crosscheck --dispatch=switch";
    M.push_back(S);
  }
  // Stressed cells: collect before every allocation.  Same-opt two-space /
  // gen-gc / reference-decoder cells must agree exactly on the table-driven
  // counts (the GenGC.StressedRootCountsMatchDefaultMode invariant), so
  // they share a stats group.
  {
    RunSpec S = Base("O0-two-stress");
    S.CO.OptLevel = 0;
    S.VO.HeapBytes = 1u << 20;
    S.VO.GcStress = true;
    S.StatsGroup = 0;
    S.CliFlags = "--noopt --heap 1048576 --stress --gc-crosscheck";
    M.push_back(S);
  }
  {
    RunSpec S = Base("O0-gen-stress");
    S.CO.OptLevel = 0;
    S.CO.WriteBarriers = true;
    S.VO.GenGc = true;
    S.VO.HeapBytes = 1u << 20;
    S.VO.GcStress = true;
    S.StatsGroup = 0;
    S.CliFlags = "--noopt --heap 1048576 --stress --gen-gc --gc-crosscheck";
    M.push_back(S);
    // Dispatch twin: identical configuration under the switch tier.  The
    // tiers must agree bit-identically — output, Instrs, every stat.
    S.Name = "O0-gen-stress-switch";
    S.VO.Dispatch = vm::DispatchTier::Switch;
    S.TwinOf = "O0-gen-stress";
    S.CliFlags += " --dispatch=switch";
    M.push_back(S);
  }
  {
    RunSpec S = Base("O2-two-stress");
    S.VO.HeapBytes = 1u << 20;
    S.VO.GcStress = true;
    S.StatsGroup = 1;
    S.CliFlags = "--heap 1048576 --stress --gc-crosscheck";
    M.push_back(S);
    // Dispatch twin (see O0-gen-stress-switch).
    S.Name = "O2-two-stress-switch";
    S.VO.Dispatch = vm::DispatchTier::Switch;
    S.TwinOf = "O2-two-stress";
    S.CliFlags += " --dispatch=switch";
    M.push_back(S);
  }
  {
    RunSpec S = Base("O2-gen-stress");
    S.CO.WriteBarriers = true;
    S.VO.GenGc = true;
    S.VO.HeapBytes = 1u << 20;
    S.VO.GcStress = true;
    S.StatsGroup = 1;
    S.CliFlags = "--heap 1048576 --stress --gen-gc --gc-crosscheck";
    M.push_back(S);
  }
  {
    RunSpec S = Base("O2-two-stress-noindex");
    S.VO.HeapBytes = 1u << 20;
    S.VO.GcStress = true;
    S.GCO.UseMapIndex = false;
    S.StatsGroup = 1;
    S.CliFlags = "--heap 1048576 --stress --no-map-index --gc-crosscheck";
    M.push_back(S);
  }
  // Path splitting duplicates loops (Fig. 2), so code differs and only
  // output/status are comparable.
  {
    RunSpec S = Base("O2-split-stress");
    S.CO.Mode = driver::Disambiguation::PathSplitting;
    S.VO.HeapBytes = 1u << 20;
    S.VO.GcStress = true;
    S.CliFlags = "--heap 1048576 --stress --split --gc-crosscheck";
    M.push_back(S);
  }
  // Heap-sizing policy under pressure: occupancy-triggered growth plus
  // nursery auto-sizing change *when* collections happen, never what is
  // reachable — output, the exit snapshot, and the mid-run steady-state
  // snapshot must still match every other cell.
  {
    RunSpec S = Base("O2-gen-growth");
    S.CO.WriteBarriers = true;
    S.VO.GenGc = true;
    S.VO.HeapBytes = 96u << 10;
    S.VO.HeapGrowthPct = 60;
    S.VO.HeapMaxBytes = 1u << 20;
    S.VO.NurseryAuto = true;
    S.CliFlags = "--heap 98304 --gen-gc --heap-growth 60 --heap-max 1048576"
                 " --nursery-auto --gc-crosscheck";
    M.push_back(S);
  }
  // Small-heap pressure: natural (non-stress) collection schedules.
  {
    RunSpec S = Base("O2-two-small");
    S.VO.HeapBytes = 128u << 10;
    S.CliFlags = "--heap 131072 --gc-crosscheck";
    M.push_back(S);
  }
  {
    RunSpec S = Base("O0-two-small");
    S.CO.OptLevel = 0;
    S.VO.HeapBytes = 128u << 10;
    S.CliFlags = "--noopt --heap 131072 --gc-crosscheck";
    M.push_back(S);
  }

  if (HasSpin)
    for (RunSpec &S : M)
      S.CliFlags += " --threads --spawn Spin";
  return M;
}

//===----------------------------------------------------------------------===//
// Sandboxed execution
//===----------------------------------------------------------------------===//

namespace {

/// Runs the program in this process (called in the forked child).
RunOutcome executeInProcess(const vm::Program &Prog, const RunSpec &Spec) {
  RunOutcome O;
  vm::VM M(Prog, Spec.VO);
  gc::installPreciseCollector(M, Spec.GCO);
  // Online leak detector, attached in every cell with a short window and a
  // tiny byte floor so the fuzzer's injected leaks (Coverage::LeakBias) are
  // well within reach.  The flag set is a deterministic function of the
  // collection schedule, so dispatch twins must reproduce it bit-for-bit.
  obs::TracerConfig TC;
  TC.Sites = &Prog.SiteTab;
  TC.Leak.Enabled = true;
  TC.Leak.Window = 4;
  TC.Leak.MinBytes = 64;
  obs::Tracer Tracer(std::move(TC));
  Tracer.enable(nullptr);
  M.Tracer = &Tracer;
  // Sampling profiler, attached in every cell with a short interval so even
  // small generated programs take samples.  Sample ordinals are a pure
  // function of the instruction stream, so dispatch twins must agree on the
  // whole encoded profile (compared via the ProfSummary digest).
  obs::ProfilerConfig PC;
  PC.IntervalInstrs = 256;
  PC.UseMapIndex = Spec.GCO.UseMapIndex;
  obs::Profiler Prof(Prog, PC);
  M.Profiler = &Prof;
  if (Spec.SpawnSpin) {
    int SpinIdx = -1;
    for (unsigned I = 0; I != Prog.Funcs.size(); ++I)
      if (Prog.Funcs[I].Name == "Spin")
        SpinIdx = static_cast<int>(I);
    if (SpinIdx < 0) {
      O.St = RunOutcome::RuntimeError;
      O.Error = "spawn: no procedure Spin";
      return O;
    }
    M.spawnThread(static_cast<unsigned>(SpinIdx));
  }
  // Steady-state probe: at the third ReqDone() marker take a globals-only
  // snapshot (stacks are not at gc-points there, so WalkStacks must stay
  // false).  The marker fires at a fixed request ordinal, so node/byte
  // totals and the output length are collection-schedule independent and
  // comparable across the whole matrix.  MidRequests tracks the total
  // markers retired — itself an invariant of the program.
  M.RequestHook = [&O](vm::VM &V, const vm::VM::ReqSample &Smp) {
    O.MidRequests = Smp.Seq;
    if (Smp.Seq != 3)
      return;
    obs::HeapSnapshot Snap;
    std::string Err;
    if (!gc::captureHeapSnapshot(V, Snap, /*WalkStacks=*/false, Err)) {
      O.MidViolation = true;
      O.MidError = Err;
      return;
    }
    O.MidNodes = Snap.Nodes.size();
    O.MidBytes = Snap.totalBytes();
    O.MidOutLen = V.Out.size();
  };
  bool Ok = M.run();
  O.St = Ok ? RunOutcome::Ok : RunOutcome::RuntimeError;
  O.Out = M.Out;
  O.Error = M.Error;
  O.Collections = M.Stats.Collections;
  O.MinorCollections = M.Stats.MinorCollections;
  O.RootsTraced = M.Stats.RootsTraced;
  O.DerivedAdjusted = M.Stats.DerivedAdjusted;
  O.FramesTraced = M.Stats.FramesTraced;
  O.WriteBarriersRun = M.Stats.WriteBarriersRun;
  O.BytesCopied = M.Stats.BytesCopied;
  O.ObjectsCopied = M.Stats.ObjectsCopied;
  O.Instrs = M.Stats.Instrs;
  for (const obs::Tracer::LeakFlag &F : Tracer.leakFlags()) {
    O.LeakSummary += std::to_string(F.Site) + ":" +
                     std::to_string(F.SlopeBytes) + ":" +
                     std::to_string(F.LiveBytes) + ":" +
                     std::to_string(F.FirstFlagged) + ";";
  }
  Prof.finish(Ok, M.Error, M.Stats.Instrs);
  O.ProfSummary = obs::profileSummary(Prof.buildProfile());
  if (Ok) {
    // At-exit snapshot: every thread is dead, so the root set is exactly
    // the globals and the reachable graph is independent of the collection
    // schedule — comparable across every matrix cell.  The snapshot is
    // validated in-process against a precise recount and the conservative
    // superset before its totals are trusted.
    obs::HeapSnapshot Snap;
    std::string Err;
    if (!gc::captureHeapSnapshot(M, Snap, /*WalkStacks=*/true, Err) ||
        !gc::crosscheckSnapshot(M, Snap, /*WalkStacks=*/true, Err)) {
      O.SnapViolation = true;
      O.SnapError = Err;
    } else {
      O.SnapNodes = Snap.Nodes.size();
      O.SnapBytes = Snap.totalBytes();
    }
  }
  if (Ok && Spec.ConservativeCheck) {
    // The ambiguous-roots baseline must reach at least every object the
    // precise collector finds live: scan first (nothing moves), then
    // force a precise collection and count the survivors.
    gc::ConservativeStats CS = gc::conservativeTrace(M);
    uint64_t Before = M.Stats.ObjectsCopied;
    M.collectNow();
    O.PreciseLive = M.Stats.ObjectsCopied - Before;
    O.ConservativeReached = CS.ObjectsReached;
    O.ConservativeViolation = CS.ObjectsReached < O.PreciseLive;
  }
  return O;
}

const char *statusWord(RunOutcome::Status St) {
  switch (St) {
  case RunOutcome::Ok:
    return "ok";
  case RunOutcome::RuntimeError:
    return "rterr";
  case RunOutcome::CompileError:
    return "cerr";
  case RunOutcome::Crashed:
    return "crash";
  }
  return "crash";
}

std::string serialize(const RunOutcome &O) {
  std::ostringstream P;
  P << "S " << statusWord(O.St) << "\n";
  P << "O " << O.Out.size() << "\n" << O.Out << "\n";
  P << "E " << O.Error.size() << "\n" << O.Error << "\n";
  P << "T " << O.Collections << " " << O.MinorCollections << " "
    << O.RootsTraced << " " << O.DerivedAdjusted << " " << O.FramesTraced
    << " " << O.WriteBarriersRun << " " << O.BytesCopied << " "
    << O.ObjectsCopied << " " << O.Instrs << "\n";
  P << "C " << (O.ConservativeViolation ? 1 : 0) << " "
    << O.ConservativeReached << " " << O.PreciseLive << "\n";
  P << "N " << (O.SnapViolation ? 1 : 0) << " " << O.SnapNodes << " "
    << O.SnapBytes << "\n";
  P << "M " << (O.MidViolation ? 1 : 0) << " " << O.MidRequests << " "
    << O.MidNodes << " " << O.MidBytes << " " << O.MidOutLen << "\n";
  P << "Z " << O.MidError.size() << "\n" << O.MidError << "\n";
  P << "Y " << O.SnapError.size() << "\n" << O.SnapError << "\n";
  P << "L " << O.LeakSummary.size() << "\n" << O.LeakSummary << "\n";
  P << "P " << O.ProfSummary.size() << "\n" << O.ProfSummary << "\n";
  P << "D\n";
  return P.str();
}

bool parsePayload(const std::string &Buf, RunOutcome &O) {
  size_t Pos = 0;
  auto Line = [&](std::string &L) {
    size_t E = Buf.find('\n', Pos);
    if (E == std::string::npos)
      return false;
    L = Buf.substr(Pos, E - Pos);
    Pos = E + 1;
    return true;
  };
  auto Sized = [&](char Tag, std::string &Dst) {
    std::string L;
    if (!Line(L) || L.size() < 2 || L[0] != Tag || L[1] != ' ')
      return false;
    size_t N = std::strtoull(L.c_str() + 2, nullptr, 10);
    if (Pos + N + 1 > Buf.size())
      return false;
    Dst = Buf.substr(Pos, N);
    Pos += N + 1; // payload + '\n'
    return true;
  };
  std::string L;
  if (!Line(L) || L.rfind("S ", 0) != 0)
    return false;
  std::string W = L.substr(2);
  if (W == "ok")
    O.St = RunOutcome::Ok;
  else if (W == "rterr")
    O.St = RunOutcome::RuntimeError;
  else if (W == "cerr")
    O.St = RunOutcome::CompileError;
  else
    return false;
  if (!Sized('O', O.Out) || !Sized('E', O.Error))
    return false;
  if (!Line(L) || L.rfind("T ", 0) != 0)
    return false;
  {
    std::istringstream In(L.substr(2));
    if (!(In >> O.Collections >> O.MinorCollections >> O.RootsTraced >>
          O.DerivedAdjusted >> O.FramesTraced >> O.WriteBarriersRun >>
          O.BytesCopied >> O.ObjectsCopied >> O.Instrs))
      return false;
  }
  if (!Line(L) || L.rfind("C ", 0) != 0)
    return false;
  {
    int Viol = 0;
    std::istringstream In(L.substr(2));
    if (!(In >> Viol >> O.ConservativeReached >> O.PreciseLive))
      return false;
    O.ConservativeViolation = Viol != 0;
  }
  if (!Line(L) || L.rfind("N ", 0) != 0)
    return false;
  {
    int Viol = 0;
    std::istringstream In(L.substr(2));
    if (!(In >> Viol >> O.SnapNodes >> O.SnapBytes))
      return false;
    O.SnapViolation = Viol != 0;
  }
  if (!Line(L) || L.rfind("M ", 0) != 0)
    return false;
  {
    int Viol = 0;
    std::istringstream In(L.substr(2));
    if (!(In >> Viol >> O.MidRequests >> O.MidNodes >> O.MidBytes >>
          O.MidOutLen))
      return false;
    O.MidViolation = Viol != 0;
  }
  if (!Sized('Z', O.MidError) || !Sized('Y', O.SnapError) ||
      !Sized('L', O.LeakSummary) || !Sized('P', O.ProfSummary))
    return false;
  return Line(L) && L == "D";
}

} // namespace

RunOutcome fuzz::runSandboxed(const vm::Program &Prog, const RunSpec &Spec) {
  RunOutcome O;
  int Fd[2];
  if (pipe(Fd) != 0) {
    O.St = RunOutcome::Crashed;
    O.Error = "pipe failed";
    return O;
  }
  pid_t Pid = fork();
  if (Pid < 0) {
    close(Fd[0]);
    close(Fd[1]);
    O.St = RunOutcome::Crashed;
    O.Error = "fork failed";
    return O;
  }
  if (Pid == 0) {
    close(Fd[0]);
    // A genuinely broken table aborts on a collector assertion: keep the
    // parent's stderr clean (the repro command replays the message) and
    // skip core dumps — crashes are an *expected* oracle signal here.
    int Null = open("/dev/null", O_WRONLY);
    if (Null >= 0) {
      dup2(Null, 2);
      close(Null);
    }
    struct rlimit NoCore = {0, 0};
    setrlimit(RLIMIT_CORE, &NoCore);
    // Backstop for hangs the instruction budget somehow misses (the
    // budget itself is the deterministic limit; this is belt-and-braces).
    alarm(120);
    RunOutcome C = executeInProcess(Prog, Spec);
    std::string P = serialize(C);
    size_t Off = 0;
    while (Off < P.size()) {
      ssize_t W = write(Fd[1], P.data() + Off, P.size() - Off);
      if (W <= 0)
        break;
      Off += static_cast<size_t>(W);
    }
    _exit(0);
  }
  close(Fd[1]);
  std::string Buf;
  char Tmp[4096];
  ssize_t N;
  while ((N = read(Fd[0], Tmp, sizeof Tmp)) > 0)
    Buf.append(Tmp, static_cast<size_t>(N));
  close(Fd[0]);
  int WStatus = 0;
  waitpid(Pid, &WStatus, 0);
  if (parsePayload(Buf, O))
    return O;
  O = RunOutcome();
  O.St = RunOutcome::Crashed;
  if (WIFSIGNALED(WStatus))
    O.Signal = WTERMSIG(WStatus);
  return O;
}

//===----------------------------------------------------------------------===//
// Differential check
//===----------------------------------------------------------------------===//

namespace {

std::string escape(const std::string &S) {
  std::string R;
  for (char C : S) {
    if (C == '\n')
      R += "\\n";
    else if (C == '"')
      R += "\\\"";
    else
      R += C;
  }
  return R;
}

std::string statsBrief(const RunOutcome &O) {
  std::ostringstream S;
  S << "{c=" << O.Collections << " r=" << O.RootsTraced
    << " d=" << O.DerivedAdjusted << " f=" << O.FramesTraced << "}";
  return S.str();
}

} // namespace

OracleResult fuzz::checkSource(const std::string &Source, bool HasSpin,
                               bool FailFast) {
  OracleResult Res;
  std::vector<RunSpec> Specs = buildMatrix(HasSpin);

  // Deduplicate compiler configurations.
  std::vector<driver::CompilerOptions> COs;
  std::vector<size_t> SpecCO(Specs.size());
  auto Key = [](const driver::CompilerOptions &C) {
    return (C.OptLevel << 3) | (C.WriteBarriers ? 4 : 0) |
           (C.Mode == driver::Disambiguation::PathSplitting ? 2 : 0) |
           (C.ThreadedPolls ? 1 : 0);
  };
  for (size_t I = 0; I != Specs.size(); ++I) {
    size_t Found = COs.size();
    for (size_t J = 0; J != COs.size(); ++J)
      if (Key(COs[J]) == Key(Specs[I].CO))
        Found = J;
    if (Found == COs.size())
      COs.push_back(Specs[I].CO);
    SpecCO[I] = Found;
  }

  // The normal path batch-compiles everything up front; the reducer's
  // fail-fast path compiles lazily so an early divergence skips the rest.
  std::vector<driver::CompileResult> Compiled(COs.size());
  std::vector<bool> Have(COs.size(), false);
  if (!FailFast) {
    Compiled = driver::compileBatch(Source, COs);
    Have.assign(COs.size(), true);
  }
  auto Get = [&](size_t J) -> driver::CompileResult & {
    if (!Have[J]) {
      Compiled[J] = std::move(
          driver::compileBatch(Source, {COs[J]}).front());
      Have[J] = true;
    }
    return Compiled[J];
  };

  std::ostringstream R;
  auto Fail = [&](size_t I) {
    if (Res.FailingConfigs.empty() ||
        Res.FailingConfigs.back() != Specs[I].Name)
      Res.FailingConfigs.push_back(Specs[I].Name);
    Res.Diverged = true;
  };

  std::vector<RunOutcome> Outs(Specs.size());
  for (size_t I = 0; I != Specs.size(); ++I) {
    driver::CompileResult &C = Get(SpecCO[I]);
    if (!C.Prog) {
      // Compile failure: in the reference configuration a bad program
      // (generator/reducer defect); anywhere else a config-dependent
      // compiler bug.
      if (Specs[I].IsRef) {
        Res.RefFailed = true;
        Res.Report = "  [" + Specs[I].Name + "] compile error: " +
                     escape(C.Diags.str()) + "\n";
        return Res;
      }
      R << "  [" << Specs[I].Name << "] compile error: "
        << escape(C.Diags.str()) << "\n";
      Fail(I);
      if (FailFast)
        break;
      continue;
    }
    RunOutcome &O = Outs[I];
    O = runSandboxed(*C.Prog, Specs[I]);
    if (Specs[I].IsRef) {
      if (O.St != RunOutcome::Ok) {
        Res.RefFailed = true;
        std::ostringstream RR;
        RR << "  [" << Specs[I].Name << "] reference run failed: ";
        if (O.St == RunOutcome::Crashed)
          RR << "signal " << O.Signal;
        else
          RR << escape(O.Error);
        RR << "\n";
        Res.Report = RR.str();
        return Res;
      }
      if (O.ConservativeViolation) {
        R << "  [" << Specs[I].Name << "] conservative trace reached "
          << O.ConservativeReached << " objects < precise live "
          << O.PreciseLive << "\n";
        Fail(I);
        if (FailFast)
          break;
      }
      if (O.SnapViolation) {
        R << "  [" << Specs[I].Name << "] snapshot cross-check failed: "
          << escape(O.SnapError) << "\n";
        Fail(I);
        if (FailFast)
          break;
      }
      if (O.MidViolation) {
        R << "  [" << Specs[I].Name << "] mid-run snapshot failed: "
          << escape(O.MidError) << "\n";
        Fail(I);
        if (FailFast)
          break;
      }
      continue;
    }
    const RunOutcome &Ref = Outs[0];
    if (O.St == RunOutcome::Crashed) {
      R << "  [" << Specs[I].Name << "] crashed: signal " << O.Signal
        << "\n";
      Fail(I);
    } else if (O.St != RunOutcome::Ok) {
      R << "  [" << Specs[I].Name
        << "] runtime error (reference succeeded): " << escape(O.Error)
        << "\n";
      Fail(I);
    } else if (O.Out != Ref.Out) {
      R << "  [" << Specs[I].Name << "] output mismatch: ref \""
        << escape(Ref.Out) << "\" vs \"" << escape(O.Out) << "\"\n";
      Fail(I);
    } else if (O.SnapViolation) {
      R << "  [" << Specs[I].Name << "] snapshot cross-check failed: "
        << escape(O.SnapError) << "\n";
      Fail(I);
    } else if (!Ref.SnapViolation &&
               (O.SnapNodes != Ref.SnapNodes ||
                O.SnapBytes != Ref.SnapBytes)) {
      R << "  [" << Specs[I].Name << "] exit snapshot mismatch: ref "
        << Ref.SnapNodes << " nodes / " << Ref.SnapBytes << " bytes vs "
        << O.SnapNodes << " nodes / " << O.SnapBytes << " bytes\n";
      Fail(I);
    } else if (O.MidViolation) {
      R << "  [" << Specs[I].Name << "] mid-run snapshot failed: "
        << escape(O.MidError) << "\n";
      Fail(I);
    } else if (!Ref.MidViolation &&
               (O.MidRequests != Ref.MidRequests ||
                O.MidNodes != Ref.MidNodes || O.MidBytes != Ref.MidBytes ||
                O.MidOutLen != Ref.MidOutLen)) {
      R << "  [" << Specs[I].Name << "] steady-state mismatch: ref {req="
        << Ref.MidRequests << " nodes=" << Ref.MidNodes << " bytes="
        << Ref.MidBytes << " out=" << Ref.MidOutLen << "} vs {req="
        << O.MidRequests << " nodes=" << O.MidNodes << " bytes="
        << O.MidBytes << " out=" << O.MidOutLen << "}\n";
      Fail(I);
    }
    if (Res.Diverged && FailFast)
      break;
  }
  if (Res.Diverged && FailFast) {
    Res.Report = R.str();
    return Res;
  }

  // Stats groups: equivalent stressed configurations must agree exactly.
  for (int G = 0;; ++G) {
    size_t First = Specs.size();
    bool Any = false;
    for (size_t I = 0; I != Specs.size(); ++I) {
      if (Specs[I].StatsGroup != G)
        continue;
      Any = true;
      if (Outs[I].St != RunOutcome::Ok)
        continue; // already reported above
      if (First == Specs.size()) {
        First = I;
        continue;
      }
      const RunOutcome &A = Outs[First], &B = Outs[I];
      if (A.Collections != B.Collections || A.RootsTraced != B.RootsTraced ||
          A.DerivedAdjusted != B.DerivedAdjusted ||
          A.FramesTraced != B.FramesTraced) {
        R << "  [stats group " << G << "] " << Specs[First].Name << " "
          << statsBrief(A) << " != " << Specs[I].Name << " " << statsBrief(B)
          << "\n";
        Fail(I);
      }
    }
    if (!Any)
      break;
  }

  // Dispatch twins: the two execution tiers must be bit-identical on
  // everything the VM can observe — output, instruction count, and every
  // table-driven statistic — not merely schedule-equivalent.
  for (size_t I = 0; I != Specs.size(); ++I) {
    if (Specs[I].TwinOf.empty())
      continue;
    size_t P = Specs.size();
    for (size_t J = 0; J != Specs.size(); ++J)
      if (Specs[J].Name == Specs[I].TwinOf)
        P = J;
    if (P == Specs.size())
      continue;
    const RunOutcome &A = Outs[P], &B = Outs[I];
    if (A.St != RunOutcome::Ok || B.St != RunOutcome::Ok)
      continue; // already reported above
    if (A.Out != B.Out || A.Instrs != B.Instrs ||
        A.Collections != B.Collections ||
        A.MinorCollections != B.MinorCollections ||
        A.RootsTraced != B.RootsTraced ||
        A.DerivedAdjusted != B.DerivedAdjusted ||
        A.FramesTraced != B.FramesTraced ||
        A.WriteBarriersRun != B.WriteBarriersRun ||
        A.BytesCopied != B.BytesCopied ||
        A.ObjectsCopied != B.ObjectsCopied ||
        A.SnapNodes != B.SnapNodes || A.SnapBytes != B.SnapBytes ||
        A.MidRequests != B.MidRequests || A.MidNodes != B.MidNodes ||
        A.MidBytes != B.MidBytes || A.MidOutLen != B.MidOutLen ||
        A.LeakSummary != B.LeakSummary || A.ProfSummary != B.ProfSummary) {
      R << "  [dispatch twin] " << Specs[P].Name << " {i=" << A.Instrs
        << " " << statsBrief(A) << " leak=\"" << A.LeakSummary
        << "\" prof=\"" << A.ProfSummary << "\"} != " << Specs[I].Name
        << " {i=" << B.Instrs << " " << statsBrief(B) << " leak=\""
        << B.LeakSummary << "\" prof=\"" << B.ProfSummary << "\"}\n";
      Fail(I);
    }
  }

  Res.Report = R.str();
  return Res;
}
