//===- fuzz/Fuzzer.cpp - Fuzzing campaign driver --------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reducer.h"
#include "support/Provenance.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace mgc;
using namespace mgc::fuzz;

namespace {

void writeFile(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path, std::ios::binary);
  Out << Content;
}

unsigned countLines(const std::string &S) {
  unsigned N = 0;
  for (char C : S)
    if (C == '\n')
      ++N;
  return N;
}

/// Repro command lines for the configs that diverged.
std::string reproText(const std::string &ReducedPath,
                      const OracleResult &Res, bool HasSpin) {
  std::ostringstream R;
  R << "# mgc-fuzz divergence repro\n";
  R << "# reduced source: " << ReducedPath << "\n";
  R << "# oracle report:\n" << Res.Report;
  R << "# reproduce each failing configuration with:\n";
  std::vector<RunSpec> Matrix = buildMatrix(HasSpin);
  for (const std::string &Name : Res.FailingConfigs)
    for (const RunSpec &S : Matrix)
      if (S.Name == Name)
        R << "build/tools/mgc " << ReducedPath << " " << S.CliFlags << "  # "
          << Name << "\n";
  return R.str();
}

} // namespace

FuzzSummary fuzz::runFuzz(const FuzzOptions &Opts) {
  auto Start = std::chrono::steady_clock::now();
  FuzzSummary S;
  std::ostringstream Log;
  std::filesystem::create_directories(Opts.OutDir);

  Log << "mgc-fuzz: seed " << Opts.Seed << " count " << Opts.Count << "\n";

  for (uint64_t Seed = Opts.Seed; Seed != Opts.Seed + Opts.Count; ++Seed) {
    GProgram P = generateProgram(Seed);
    ++S.Programs;
    S.CovDerivedAcrossCall += P.Cov.DerivedAcrossCall;
    S.CovAmbiguous += P.Cov.Ambiguous;
    S.CovThreads += P.Cov.Threads;
    S.CovOpenArrays += P.Cov.OpenArrays;
    S.CovWithBinding += P.Cov.WithBinding;
    S.CovRecursion += P.Cov.Recursion;
    S.CovRefChains += P.Cov.RefChains;
    S.CovVarParams += P.Cov.VarParams;
    S.CovServerLoop += P.Cov.ServerLoop;
    S.CovLeakBias += P.Cov.LeakBias;

    std::string Source = P.render();
    std::string Tag = "seed" + std::to_string(Seed);
    if (Opts.DumpAll)
      writeFile(Opts.OutDir + "/" + Tag + ".mg", Source);

    OracleResult Res = checkSource(Source, P.HasSpin);
    if (Res.RefFailed) {
      ++S.GeneratorDefects;
      Log << Tag << ": generator defect\n" << Res.Report;
      writeFile(Opts.OutDir + "/" + Tag + ".mg", Source);
      continue;
    }
    if (!Res.Diverged)
      continue;

    ++S.Divergences;
    Log << Tag << ": DIVERGENCE\n" << Res.Report;
    writeFile(Opts.OutDir + "/" + Tag + ".mg", Source);

    GProgram Reduced = P;
    ReduceStats RS;
    if (Opts.Reduce) {
      auto StillFails = [](const GProgram &Q) {
        OracleResult R = checkSource(Q.render(), Q.HasSpin,
                                     /*FailFast=*/true);
        return R.Diverged && !R.RefFailed;
      };
      Reduced = reduceProgram(P, StillFails, Opts.MaxReduceTries, &RS);
    }
    std::string ReducedSource = Reduced.render();
    std::string ReducedPath = Opts.OutDir + "/" + Tag + ".reduced.mg";
    writeFile(ReducedPath, ReducedSource);

    OracleResult Final = checkSource(ReducedSource, Reduced.HasSpin);
    writeFile(Opts.OutDir + "/" + Tag + ".repro.txt",
              reproText(ReducedPath, Final.Diverged ? Final : Res,
                        Reduced.HasSpin));
    Log << "  reduced: " << countLines(ReducedSource) << " lines after "
        << RS.Tries << " tries -> " << ReducedPath << "\n";
  }

  Log << "summary: " << S.Programs << " programs, " << S.Divergences
      << " divergences, " << S.GeneratorDefects << " generator defects\n";
  Log << "coverage: derived-across-call " << S.CovDerivedAcrossCall << "/"
      << S.Programs << ", ambiguous " << S.CovAmbiguous << "/" << S.Programs
      << ", threads " << S.CovThreads << "/" << S.Programs
      << ", open-arrays " << S.CovOpenArrays << "/" << S.Programs
      << ", with " << S.CovWithBinding << "/" << S.Programs
      << ", recursion " << S.CovRecursion << "/" << S.Programs
      << ", ref-chains " << S.CovRefChains << "/" << S.Programs
      << ", var-params " << S.CovVarParams << "/" << S.Programs
      << ", server-loop " << S.CovServerLoop << "/" << S.Programs
      << ", leak-bias " << S.CovLeakBias << "/" << S.Programs << "\n";
  S.Log = Log.str();
  S.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return S;
}

std::string fuzz::summaryJson(const FuzzOptions &Opts, const FuzzSummary &S) {
  auto Frac = [&](unsigned N) {
    std::ostringstream F;
    F << (S.Programs ? static_cast<double>(N) / S.Programs : 0.0);
    return F.str();
  };
  std::ostringstream J;
  J << "{\n";
  J << "  \"provenance\": " << support::provenanceJson(Opts.Seed) << ",\n";
  J << "  \"seed\": " << Opts.Seed << ",\n";
  J << "  \"count\": " << Opts.Count << ",\n";
  J << "  \"programs\": " << S.Programs << ",\n";
  J << "  \"divergences\": " << S.Divergences << ",\n";
  J << "  \"generator_defects\": " << S.GeneratorDefects << ",\n";
  J << "  \"seconds\": " << S.Seconds << ",\n";
  J << "  \"programs_per_sec\": "
    << (S.Seconds > 0 ? S.Programs / S.Seconds : 0.0) << ",\n";
  J << "  \"coverage\": {\n";
  J << "    \"derived_across_call\": " << Frac(S.CovDerivedAcrossCall)
    << ",\n";
  J << "    \"ambiguous\": " << Frac(S.CovAmbiguous) << ",\n";
  J << "    \"threads\": " << Frac(S.CovThreads) << ",\n";
  J << "    \"open_arrays\": " << Frac(S.CovOpenArrays) << ",\n";
  J << "    \"with_binding\": " << Frac(S.CovWithBinding) << ",\n";
  J << "    \"recursion\": " << Frac(S.CovRecursion) << ",\n";
  J << "    \"ref_chains\": " << Frac(S.CovRefChains) << ",\n";
  J << "    \"var_params\": " << Frac(S.CovVarParams) << ",\n";
  J << "    \"server_loop\": " << Frac(S.CovServerLoop) << ",\n";
  J << "    \"leak_bias\": " << Frac(S.CovLeakBias) << "\n";
  J << "  }\n";
  J << "}\n";
  return J.str();
}
