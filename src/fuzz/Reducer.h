//===- fuzz/Reducer.h - Greedy test-case reducer ----------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a diverging program while the divergence keeps reproducing.
/// Works on the generator's structured form (GProgram), so every candidate
/// re-renders as syntactically valid MG; semantic validity is enforced by
/// the predicate itself (a candidate whose reference run no longer
/// compiles or succeeds is rejected).
///
/// Candidate transformations, tried greedily with restart-on-accept:
///   - drop a statement (any block, outermost first);
///   - drop a whole procedure or a global VAR group (pre-filtered by a
///     textual use check to avoid pointless compiles);
///   - shrink a FOR bound to its lower bound, or halve it;
///   - replace an IF with its THEN or ELSE branch, a WHILE with one body
///     iteration;
///   - inline a WITH block (substitute the aliased designator for the
///     alias in the body).
///
//===----------------------------------------------------------------------===//

#ifndef MGC_FUZZ_REDUCER_H
#define MGC_FUZZ_REDUCER_H

#include "fuzz/Generator.h"

#include <functional>

namespace mgc {
namespace fuzz {

/// Returns true while the candidate still exhibits the divergence.
using FailPredicate = std::function<bool(const GProgram &)>;

struct ReduceStats {
  unsigned Tries = 0;    ///< Oracle evaluations spent.
  unsigned Accepted = 0; ///< Candidates that kept the divergence.
};

/// Greedily reduces \p P under \p StillFails, spending at most
/// \p MaxTries predicate evaluations.
GProgram reduceProgram(const GProgram &P, const FailPredicate &StillFails,
                       unsigned MaxTries = 600,
                       ReduceStats *Stats = nullptr);

} // namespace fuzz
} // namespace mgc

#endif // MGC_FUZZ_REDUCER_H
