//===- fuzz/Generator.h - Random MG program generator -----------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, deterministic generator of well-typed MG programs biased
/// toward the paper's hard cases: REF RECORD chains and open arrays,
/// WITH-bound derived pointers live across allocating calls, loops whose
/// back edges carry derived values, ambiguous derivations across diamonds
/// (§4), procedure calls that may allocate, and optional spawned threads
/// with allocation-free spin loops (§5.3).
///
/// Programs are kept as a small structured tree (GProgram / GProc / GStmt)
/// rather than flat text so the reducer can drop statements, shrink loop
/// bounds, and inline WITH blocks while re-rendering valid source.
///
/// Safety rules baked into every production (the oracle treats *any*
/// behavioral divergence as a bug, so generated programs must be fully
/// deterministic and error-free):
///  - array indices come only from FOR variables over the exact valid
///    range or from in-range literals;
///  - every accumulator is reduced MOD 1000000007, so no signed overflow;
///  - list/tree links are prepend- or build-only along the walked field,
///    so every traversal terminates (back edges use fields never walked);
///  - divisors are positive literals; MOD operands are non-negative;
///  - refs are dereferenced only after a dominating assignment (NEW zeroes
///    payload words, so untouched pointer fields read as NIL);
///  - threaded programs spin allocation-free on a `done` flag that the
///    main thread sets before its final prints, and nothing allocates
///    after `done := TRUE`, so output and gc counts stay deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_FUZZ_GENERATOR_H
#define MGC_FUZZ_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace mgc {
namespace fuzz {

/// Which of the paper's hard cases a generated program exercises; the
/// fuzzer aggregates these into the coverage counters of BENCH_fuzz.json.
struct Coverage {
  bool DerivedAcrossCall = false; ///< WITH-bound pointer live across a gc-point.
  bool Ambiguous = false;         ///< §4 diamond with a path variable.
  bool Threads = false;           ///< Spawned allocation-free spin thread.
  bool OpenArrays = false;        ///< REF ARRAY OF accesses.
  bool WithBinding = false;       ///< WITH interior-pointer bindings.
  bool Recursion = false;         ///< Recursive allocating procedures.
  bool RefChains = false;         ///< REF RECORD list walks.
  bool VarParams = false;         ///< VAR parameters into allocating procs.
  bool ServerLoop = false;        ///< Long-running request loop (ReqDone)
                                  ///< with session-cache churn.
  bool LeakBias = false;          ///< Injected leak: a global-rooted chain
                                  ///< grows every request, never trimmed
                                  ///< (the growth detector's target).
};

/// One statement.  Compound kinds own nested blocks; `Text` is a complete
/// simple statement with no trailing semicolon.
struct GStmt {
  enum Kind { Text, For, While, If, With };
  Kind K = Text;
  std::string Line;      ///< Text: the statement.
  std::string Var;       ///< For: index variable; With: alias name.
  long From = 0;         ///< For: lower bound.
  long Bound = 0;        ///< For: numeric upper bound (reducible).
  std::string BoundExpr; ///< For: symbolic upper bound (overrides Bound).
  std::string Cond;      ///< While / If condition.
  std::string Target;    ///< With: the aliased designator.
  std::vector<GStmt> Body;
  std::vector<GStmt> Else; ///< If only.

  static GStmt text(std::string L) {
    GStmt S;
    S.Line = std::move(L);
    return S;
  }
};

struct GProc {
  std::string Name;
  std::string Signature; ///< Text after the name, e.g. "(n: INTEGER): Cell".
  std::vector<std::string> VarLines; ///< Declaration groups, e.g. "l, c: Cell".
  std::vector<GStmt> Body;
};

struct GProgram {
  uint64_t Seed = 0;
  std::vector<std::string> TypeLines; ///< Complete lines incl. ';'.
  std::vector<std::string> VarLines;  ///< Declaration groups, no ';'.
  std::vector<GProc> Procs;
  std::vector<GStmt> Main;
  bool HasSpin = false; ///< Program contains the Spin thread procedure.
  bool Comment = true;  ///< Emit the provenance comment (reducer drops it).
  bool Compact = false; ///< Omit blank separator lines (reducer sets it).
  Coverage Cov;

  /// Renders the whole module as MG source.
  std::string render() const;

  bool hasProc(const std::string &Name) const;
};

/// Generates one deterministic program from \p Seed.
GProgram generateProgram(uint64_t Seed);

} // namespace fuzz
} // namespace mgc

#endif // MGC_FUZZ_GENERATOR_H
