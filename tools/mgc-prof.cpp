//===- tools/mgc-prof.cpp - Profile analyzer -------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders binary profiles written by `mgc --profile` (obs/Profile.h).
///
///   mgc-prof [options] FILE.prof
///
///   --top N        rows per table (default 10)
///   --folded       folded flamegraph lines ("main;f;g weight") instead of
///                  the report — pipe into standard flamegraph tooling;
///                  mutator weight by default
///   --alloc        with --folded: allocation profile (weight = bytes)
///   --diff B.prof  mutator-weight diff (B - FILE), keyed by folded stack
///   --summary      one-line digest (counts + body hash) — the fuzz
///                  oracle's twin-comparison form
///
//===----------------------------------------------------------------------===//

#include "obs/Profile.h"

#include <cstdio>
#include <cstring>

using namespace mgc;

namespace {
int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--top N] [--folded] [--alloc] [--diff B.prof] "
               "[--summary] FILE.prof\n",
               Argv0);
  return 2;
}
} // namespace

int main(int argc, char **argv) {
  const char *Path = nullptr;
  const char *DiffPath = nullptr;
  size_t TopN = 10;
  bool Folded = false, Alloc = false, Summary = false;

  for (int A = 1; A < argc; ++A) {
    const char *Arg = argv[A];
    if (!std::strcmp(Arg, "--top")) {
      if (++A == argc)
        return usage(argv[0]);
      long long N = std::atoll(argv[A]);
      if (N < 1)
        return usage(argv[0]);
      TopN = static_cast<size_t>(N);
    } else if (!std::strcmp(Arg, "--folded")) {
      Folded = true;
    } else if (!std::strcmp(Arg, "--alloc")) {
      Alloc = true;
    } else if (!std::strcmp(Arg, "--summary")) {
      Summary = true;
    } else if (!std::strcmp(Arg, "--diff")) {
      if (++A == argc)
        return usage(argv[0]);
      DiffPath = argv[A];
    } else if (Arg[0] == '-') {
      return usage(argv[0]);
    } else {
      Path = Arg;
    }
  }
  if (!Path)
    return usage(argv[0]);

  obs::Profile P;
  std::string Err;
  if (!obs::readProfileFile(Path, P, Err)) {
    std::fprintf(stderr, "mgc-prof: %s: %s\n", Path, Err.c_str());
    return 1;
  }

  if (DiffPath) {
    obs::Profile B;
    if (!obs::readProfileFile(DiffPath, B, Err)) {
      std::fprintf(stderr, "mgc-prof: %s: %s\n", DiffPath, Err.c_str());
      return 1;
    }
    if (P.ToolVersion != B.ToolVersion || P.BuildFlags != B.BuildFlags)
      std::fprintf(stderr,
                   "mgc-prof: warning: profiles come from different builds "
                   "(%s / %s vs %s / %s)\n",
                   P.ToolVersion.c_str(), P.BuildFlags.c_str(),
                   B.ToolVersion.c_str(), B.BuildFlags.c_str());
    std::fputs(obs::renderDiff(P, B, TopN).c_str(), stdout);
    return 0;
  }
  if (Summary) {
    std::printf("%s\n", obs::profileSummary(P).c_str());
    return 0;
  }
  if (Folded) {
    std::fputs(obs::renderFolded(P, Alloc).c_str(), stdout);
    return 0;
  }
  std::fputs(obs::renderProfile(P, TopN).c_str(), stdout);
  return 0;
}
