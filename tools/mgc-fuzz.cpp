//===- tools/mgc-fuzz.cpp - Differential GC fuzzer driver -----------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end of the differential fuzzer (src/fuzz):
///
///   mgc-fuzz --seed 1 --count 200 [--out fuzz-artifacts]
///            [--json BENCH_fuzz.json] [--no-reduce] [--dump]
///
/// Generates `count` deterministic MG programs starting at `seed`, runs
/// each through the cross-mode oracle, and on divergence writes the
/// original source, a reduced repro, and the mgc command lines that
/// reproduce it to the artifact directory.  stdout is a pure function of
/// (seed, count); wall-clock throughput goes only to the JSON file.
/// Exits 1 if any divergence was found (a compiler/collector bug) or any
/// generated program was itself defective (a generator bug).
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace mgc;

namespace {
int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--count N] [--out DIR] [--json FILE] "
               "[--no-reduce] [--dump]\n",
               Argv0);
  return 2;
}
} // namespace

int main(int argc, char **argv) {
  fuzz::FuzzOptions Opts;
  std::string JsonPath;

  for (int A = 1; A < argc; ++A) {
    const char *Arg = argv[A];
    if (!std::strcmp(Arg, "--seed")) {
      if (++A == argc)
        return usage(argv[0]);
      Opts.Seed = static_cast<uint64_t>(std::atoll(argv[A]));
    } else if (!std::strcmp(Arg, "--count")) {
      if (++A == argc)
        return usage(argv[0]);
      Opts.Count = static_cast<unsigned>(std::atoi(argv[A]));
    } else if (!std::strcmp(Arg, "--out")) {
      if (++A == argc)
        return usage(argv[0]);
      Opts.OutDir = argv[A];
    } else if (!std::strcmp(Arg, "--json")) {
      if (++A == argc)
        return usage(argv[0]);
      JsonPath = argv[A];
    } else if (!std::strcmp(Arg, "--no-reduce")) {
      Opts.Reduce = false;
    } else if (!std::strcmp(Arg, "--dump")) {
      Opts.DumpAll = true;
    } else {
      return usage(argv[0]);
    }
  }

  fuzz::FuzzSummary S = fuzz::runFuzz(Opts);
  std::fputs(S.Log.c_str(), stdout);

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    Out << fuzz::summaryJson(Opts, S);
  }
  return (S.Divergences || S.GeneratorDefects) ? 1 : 0;
}
