//===- tools/mgc.cpp - The mgc command-line driver -------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile and run MG programs from the command line.
///
///   mgc [options] file.mg
///
///   --noopt          compile at -O0
///   --no-gc-tables   omit gc tables (the program cannot collect)
///   --cisc           enable the VAX-style addressing fold
///   --threads        insert loop polls for threaded collection (§5.3)
///   --interproc      elide gc-points at calls to non-allocating procs
///   --split          path-splitting instead of path variables (§4)
///   --dump-ir        print the optimized IR and exit
///   --dump-asm       print machine code with decoded tables and exit
///   --stats          print compilation and collection statistics
///   --dispatch {threaded,switch}
///                    execution engine: pre-decoded computed-goto tier
///                    (default) or the reference switch interpreter; both
///                    are observably bit-identical
///   --trace FILE     stream a JSONL gc trace (see obs/Trace.h; render
///                    with mgc-report)
///   --stats-json FILE
///                    write machine-readable run statistics as JSON
///   --heap-snapshot FILE
///                    write a precise heap snapshot at exit (analyze with
///                    mgc-heapsnap); with --gc-crosscheck the snapshot is
///                    validated against an independent precise re-trace
///                    and the conservative superset
///   --snapshot-every N
///                    additionally write FILE.1, FILE.2, ... after every
///                    Nth collection (requires --heap-snapshot; watch the
///                    stream with mgc-heapsnap --watch)
///   --leak-detect    online growth detector: sample per-site live bytes
///                    at every full collection and flag sites whose live
///                    set grows monotonically across the sliding window
///                    (reported in --stats-json, --stats, and the trace's
///                    leak records; no snapshot file needed)
///   --leak-window N  detector window in full collections (default 8;
///                    also the detection-latency bound)
///   --leak-min-bytes B
///                    ignore sites below B live bytes (default 4096)
///   --profile FILE   gc-map-driven sampling profiler: deterministic
///                    mutator-time samples at gc-point granularity plus
///                    per-site/per-stack allocation attribution, written
///                    as a binary profile (analyze with mgc-prof); byte-
///                    identical across dispatch tiers, gc threads, and
///                    decode modes
///   --profile-interval N
///                    mutator sampling interval in retired instructions
///                    (default 4096)
///   --stress         collect before every allocation
///   --heap BYTES     semispace size (default 4 MiB)
///   --gen-gc         generational mode: nursery + write barriers +
///                    remembered-set minor collections
///   --nursery-bytes BYTES
///                    size of each nursery half (default heap/8)
///   --heap-growth PCT
///                    heap-sizing policy: double the semispace at any
///                    collection that begins above PCT% occupancy (or
///                    that a failed allocation demands), up to --heap-max
///   --heap-max BYTES cap for --heap-growth (default 8x the initial heap)
///   --nursery-auto   resize the nursery each minor collection from the
///                    observed survivor volume (floor --nursery-bytes,
///                    cap heap/4)
///   --no-map-index   decode tables with the reference walk-from-start
///                    decoder (the §6.3 artifact) instead of the load-time
///                    index + decoded-point cache
///   --gc-crosscheck  verify every accelerated decode against the
///                    reference decoder (aborts on mismatch)
///   --gc-threads N   GC worker threads for the stop-the-world root walk
///                    and full-copy evacuation (default 1 = serial,
///                    bit-identical GC observables; clamped to 1..8)
///   --no-run         compile only
///
//===----------------------------------------------------------------------===//

#include "codegen/Disasm.h"
#include "driver/Compiler.h"
#include "gc/Collector.h"
#include "gc/Snapshot.h"
#include "obs/Profile.h"
#include "obs/Trace.h"
#include "support/Provenance.h"
#include "vm/VM.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

using namespace mgc;

namespace {
int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--noopt] [--no-gc-tables] [--cisc] [--threads] "
               "[--interproc]\n           [--split] [--dump-ir] [--dump-asm] "
               "[--stats] [--stress]\n           [--trace FILE] "
               "[--stats-json FILE] [--heap-snapshot FILE] "
               "[--snapshot-every N]\n           [--leak-detect] "
               "[--leak-window N] [--leak-min-bytes B]\n           "
               "[--profile FILE] [--profile-interval N]\n           "
               "[--heap BYTES] [--gen-gc]\n           "
               "[--heap-growth PCT] [--heap-max BYTES] [--nursery-auto]\n"
               "           [--nursery-bytes BYTES] [--no-map-index] "
               "[--gc-crosscheck] [--gc-threads N]\n           "
               "[--dispatch {threaded,switch}] [--no-run] [--spawn PROC] "
               "file.mg\n",
               Argv0);
  return 2;
}

void jsonField(std::string &Out, const char *Key, unsigned long long V,
               bool First = false) {
  if (!First)
    Out += ',';
  Out += '"';
  Out += Key;
  Out += "\":";
  Out += std::to_string(V);
}
} // namespace

int main(int argc, char **argv) {
  driver::CompilerOptions Options;
  vm::VMOptions VO;
  gc::CollectorOptions GCO;
  bool DumpIR = false, DumpAsm = false, Stats = false, Run = true;
  const char *Path = nullptr;
  const char *SpawnName = nullptr;
  const char *TracePath = nullptr;
  const char *StatsJsonPath = nullptr;
  const char *SnapPath = nullptr;
  const char *ProfilePath = nullptr;
  unsigned long long ProfileInterval = 4096;
  unsigned long long SnapEvery = 0;
  obs::LeakConfig Leak;

  for (int A = 1; A < argc; ++A) {
    const char *Arg = argv[A];
    if (!std::strcmp(Arg, "--noopt")) {
      Options.OptLevel = 0;
    } else if (!std::strcmp(Arg, "--no-gc-tables")) {
      Options.GcTables = false;
    } else if (!std::strcmp(Arg, "--cisc")) {
      Options.CiscFold = true;
    } else if (!std::strcmp(Arg, "--threads")) {
      Options.ThreadedPolls = true;
    } else if (!std::strcmp(Arg, "--interproc")) {
      Options.InterprocGcPoints = true;
    } else if (!std::strcmp(Arg, "--split")) {
      Options.Mode = driver::Disambiguation::PathSplitting;
    } else if (!std::strcmp(Arg, "--dump-ir")) {
      DumpIR = true;
    } else if (!std::strcmp(Arg, "--dump-asm")) {
      DumpAsm = true;
    } else if (!std::strcmp(Arg, "--stats")) {
      Stats = true;
    } else if (!std::strcmp(Arg, "--trace")) {
      if (++A == argc)
        return usage(argv[0]);
      TracePath = argv[A];
    } else if (!std::strcmp(Arg, "--stats-json")) {
      if (++A == argc)
        return usage(argv[0]);
      StatsJsonPath = argv[A];
    } else if (!std::strcmp(Arg, "--heap-snapshot")) {
      if (++A == argc)
        return usage(argv[0]);
      SnapPath = argv[A];
    } else if (!std::strcmp(Arg, "--snapshot-every")) {
      if (++A == argc)
        return usage(argv[0]);
      SnapEvery = static_cast<unsigned long long>(std::atoll(argv[A]));
    } else if (!std::strcmp(Arg, "--leak-detect")) {
      Leak.Enabled = true;
    } else if (!std::strcmp(Arg, "--leak-window")) {
      if (++A == argc)
        return usage(argv[0]);
      Leak.Window = static_cast<uint32_t>(std::atoll(argv[A]));
    } else if (!std::strcmp(Arg, "--leak-min-bytes")) {
      if (++A == argc)
        return usage(argv[0]);
      Leak.MinBytes = static_cast<uint64_t>(std::atoll(argv[A]));
    } else if (!std::strcmp(Arg, "--profile")) {
      if (++A == argc)
        return usage(argv[0]);
      ProfilePath = argv[A];
    } else if (!std::strcmp(Arg, "--profile-interval")) {
      if (++A == argc)
        return usage(argv[0]);
      long long N = std::atoll(argv[A]);
      if (N < 1) {
        std::fprintf(stderr, "mgc: --profile-interval must be >= 1\n");
        return 2;
      }
      ProfileInterval = static_cast<unsigned long long>(N);
    } else if (!std::strcmp(Arg, "--stress")) {
      VO.GcStress = true;
    } else if (!std::strcmp(Arg, "--no-map-index")) {
      GCO.UseMapIndex = false;
    } else if (!std::strcmp(Arg, "--gc-crosscheck")) {
      GCO.CrossCheck = true;
    } else if (!std::strcmp(Arg, "--gc-threads")) {
      if (++A == argc)
        return usage(argv[0]);
      long long N = std::atoll(argv[A]);
      if (N < 1)
        N = 1;
      if (N > static_cast<long long>(obs::MaxGcWorkers))
        N = obs::MaxGcWorkers;
      GCO.Threads = static_cast<unsigned>(N);
    } else if (!std::strcmp(Arg, "--no-run")) {
      Run = false;
    } else if (!std::strcmp(Arg, "--heap")) {
      if (++A == argc)
        return usage(argv[0]);
      VO.HeapBytes = static_cast<size_t>(std::atoll(argv[A]));
    } else if (!std::strcmp(Arg, "--gen-gc")) {
      Options.WriteBarriers = true;
      VO.GenGc = true;
    } else if (!std::strcmp(Arg, "--nursery-bytes")) {
      if (++A == argc)
        return usage(argv[0]);
      VO.NurseryBytes = static_cast<size_t>(std::atoll(argv[A]));
    } else if (!std::strcmp(Arg, "--heap-growth")) {
      if (++A == argc)
        return usage(argv[0]);
      long long Pct = std::atoll(argv[A]);
      if (Pct < 1 || Pct > 100) {
        std::fprintf(stderr,
                     "mgc: --heap-growth: occupancy percent must be 1..100\n");
        return 2;
      }
      VO.HeapGrowthPct = static_cast<unsigned>(Pct);
    } else if (!std::strcmp(Arg, "--heap-max")) {
      if (++A == argc)
        return usage(argv[0]);
      VO.HeapMaxBytes = static_cast<size_t>(std::atoll(argv[A]));
    } else if (!std::strcmp(Arg, "--nursery-auto")) {
      VO.NurseryAuto = true;
    } else if (!std::strcmp(Arg, "--dispatch") ||
               !std::strncmp(Arg, "--dispatch=", 11)) {
      const char *V = Arg[10] == '=' ? Arg + 11 : nullptr;
      if (!V) {
        if (++A == argc)
          return usage(argv[0]);
        V = argv[A];
      }
      if (!std::strcmp(V, "threaded"))
        VO.Dispatch = vm::DispatchTier::Threaded;
      else if (!std::strcmp(V, "switch"))
        VO.Dispatch = vm::DispatchTier::Switch;
      else {
        std::fprintf(stderr, "mgc: --dispatch: unknown tier '%s' "
                             "(expected threaded or switch)\n",
                     V);
        return 2;
      }
    } else if (!std::strcmp(Arg, "--spawn")) {
      if (++A == argc)
        return usage(argv[0]);
      SpawnName = argv[A];
    } else if (Arg[0] == '-') {
      return usage(argv[0]);
    } else {
      Path = Arg;
    }
  }
  if (!Path)
    return usage(argv[0]);
  if (SnapEvery && !SnapPath) {
    std::fprintf(stderr, "mgc: --snapshot-every requires --heap-snapshot\n");
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "mgc: cannot open %s\n", Path);
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  driver::CompileResult Compiled = driver::compile(Buf.str(), Options);
  if (!Compiled.Prog) {
    std::fprintf(stderr, "%s", Compiled.Diags.str().c_str());
    return 1;
  }
  vm::Program &Prog = *Compiled.Prog;

  if (DumpIR) {
    std::fputs(Compiled.IRDump.c_str(), stdout);
    return 0;
  }
  if (DumpAsm) {
    for (unsigned F = 0; F != Prog.Funcs.size(); ++F)
      std::fputs(
          codegen::disassembleFunction(Prog, F, Options.GcTables).c_str(),
          stdout);
    return 0;
  }

  if (Stats) {
    std::printf("code: %zu bytes, %zu functions, %u gc-points (%u elided), "
                "%u loop polls\n",
                Prog.codeSizeBytes(), Prog.Funcs.size(), Prog.Stats.NGC,
                Prog.GcPointsElided, Prog.LoopPolls);
    std::printf("tables: delta-main pp %zuB (plain %zuB), full-info packed "
                "%zuB, pc-map %zuB\n",
                Prog.Sizes.DeltaPP, Prog.Sizes.DeltaPlain,
                Prog.Sizes.FullPack, Prog.Sizes.PcMapBytes);
    // Observability cost on its own line: the site table is NOT a gc-table
    // scheme and never inflates the Table 2 figures above.
    std::printf("site table: %zuB, %zu sites (observability; excluded from "
                "gc-table sizes)\n",
                Prog.Sizes.SiteTableBytes, Prog.SiteTab.Sites.size());
    if (Prog.PathVars)
      std::printf("path variables: %u (%u assignments)\n", Prog.PathVars,
                  Prog.PathAssigns);
    if (Options.WriteBarriers)
      std::printf("write barriers: %u emitted\n", Prog.WriteBarriersEmitted);
    if (Options.CiscFold)
      std::printf("addressing folds: %u applied, %u preserved for gc\n",
                  Prog.CiscFoldsApplied, Prog.CiscFoldsBlocked);
  }
  if (!Run)
    return 0;

  vm::VM Machine(Prog, VO);
  gc::installPreciseCollector(Machine, GCO);

  std::ofstream TraceOut;
  std::unique_ptr<obs::Tracer> Tracer;
  if (TracePath || StatsJsonPath || SnapPath || Leak.Enabled) {
    obs::TracerConfig TC;
    TC.Sites = &Prog.SiteTab;
    // Snapshots and the live-by-site stats need the persistent per-object
    // attribution side table, not just first-survival counters.
    TC.Attribution = true;
    TC.Leak = Leak;
    for (const vm::CompiledFunction &F : Prog.Funcs)
      TC.FuncNames.push_back(F.Name);
    TC.ProgramName = Prog.Name;
    TC.GenGc = VO.GenGc;
    TC.Dispatch = vm::dispatchTierName(Machine.activeDispatch());
    TC.SiteTableBytes = Prog.Sizes.SiteTableBytes;
    Tracer = std::make_unique<obs::Tracer>(std::move(TC));
    if (TracePath) {
      TraceOut.open(TracePath);
      if (!TraceOut) {
        std::fprintf(stderr, "mgc: cannot open trace file %s\n", TracePath);
        return 1;
      }
    }
    Tracer->enable(TracePath ? &TraceOut : nullptr);
    Machine.Tracer = Tracer.get();
  }

  std::unique_ptr<obs::Profiler> Prof;
  if (ProfilePath) {
    obs::ProfilerConfig PC;
    PC.IntervalInstrs = ProfileInterval;
    // Decode sampled frames through the same path the collector uses, so
    // --no-map-index / --gc-crosscheck exercise the profiler's walk too.
    PC.UseMapIndex = GCO.UseMapIndex;
    PC.CrossCheck = GCO.CrossCheck;
    Prof = std::make_unique<obs::Profiler>(Prog, PC);
    Machine.Profiler = Prof.get();
  }

  if (SpawnName) {
    int Idx = -1;
    for (unsigned F = 0; F != Prog.Funcs.size(); ++F)
      if (Prog.Funcs[F].Name == SpawnName)
        Idx = static_cast<int>(F);
    if (Idx < 0) {
      std::fprintf(stderr, "mgc: --spawn: no procedure named %s\n",
                   SpawnName);
      return 1;
    }
    Machine.spawnThread(static_cast<unsigned>(Idx));
  }
  unsigned long long SnapSeq = 0;
  bool SnapFailed = false;
  if (SnapPath && SnapEvery) {
    Machine.PostGcHook = [&](vm::VM &M) {
      if (M.Stats.Collections % SnapEvery != 0)
        return;
      obs::HeapSnapshot Snap;
      std::string Err;
      if (!gc::captureHeapSnapshot(M, Snap, /*WalkStacks=*/true, Err)) {
        std::fprintf(stderr, "mgc: %s\n", Err.c_str());
        SnapFailed = true;
        return;
      }
      if (GCO.CrossCheck &&
          !gc::crosscheckSnapshot(M, Snap, /*WalkStacks=*/true, Err)) {
        // Mirror the decode cross-check: a validation mismatch is a
        // collector bug, not a recoverable condition.
        std::fprintf(stderr, "mgc: %s\n", Err.c_str());
        std::abort();
      }
      std::string File =
          std::string(SnapPath) + "." + std::to_string(++SnapSeq);
      if (!obs::writeSnapshotFile(File, Snap, Err)) {
        std::fprintf(stderr, "mgc: %s\n", Err.c_str());
        SnapFailed = true;
      }
    };
  }

  bool Ok = Machine.run();
  std::fputs(Machine.Out.c_str(), stdout);
  // A failed run still flushes everything below: the partial trace (the
  // run record carries the error), the in-progress profile (its body
  // records RunOk=false and the error), and the statistics gathered so
  // far are exactly what a mid-collection failure needs for diagnosis.
  if (Tracer)
    Tracer->finish(Ok, Machine.Error, &Machine.TheHeap);
  bool ProfFailed = false;
  obs::Profile Profile;
  if (Prof) {
    Prof->finish(Ok, Machine.Error, Machine.Stats.Instrs);
    Profile = Prof->buildProfile();
    std::string Err;
    if (!obs::writeProfileFile(ProfilePath, Profile, Err)) {
      std::fprintf(stderr, "mgc: %s\n", Err.c_str());
      ProfFailed = true;
    }
    // Surface the hottest stacks in the trace stream so mgc-report shows
    // them next to the gc events (top 10 by sampled weight).
    if (TracePath && TraceOut) {
      std::vector<const obs::Profile::MutRow *> Hot;
      Hot.reserve(Profile.Mutator.size());
      for (const obs::Profile::MutRow &Row : Profile.Mutator)
        Hot.push_back(&Row);
      std::stable_sort(Hot.begin(), Hot.end(),
                       [](const obs::Profile::MutRow *A,
                          const obs::Profile::MutRow *B) {
                         if (A->Weight != B->Weight)
                           return A->Weight > B->Weight;
                         return A->StackId < B->StackId;
                       });
      if (Hot.size() > 10)
        Hot.resize(10);
      unsigned Rank = 0;
      for (const obs::Profile::MutRow *Row : Hot) {
        std::string Line = "{\"type\":\"prof_stack\"";
        jsonField(Line, "rank", ++Rank);
        jsonField(Line, "samples", Row->Samples);
        jsonField(Line, "weight", Row->Weight);
        Line += ",\"stack\":";
        obs::appendJsonString(Line, obs::foldedStack(Profile, Row->StackId));
        Line += "}";
        TraceOut << Line << '\n';
      }
    }
  }
  if (!Ok) {
    std::fprintf(stderr, "mgc: runtime error: %s\n", Machine.Error.c_str());
    if (Stats)
      std::printf("run FAILED; statistics below are partial\n");
    if (Prof)
      std::fprintf(stderr,
                   "mgc: run FAILED; profile '%s' is partial\n", ProfilePath);
  }

  if (SnapPath) {
    // At-exit capture.  After a clean run every thread is dead, so the
    // stack walk degenerates to globals anyway; after an error the stacks
    // are not at gc-points and must not be walked.
    obs::HeapSnapshot Snap;
    std::string Err;
    if (!gc::captureHeapSnapshot(Machine, Snap, /*WalkStacks=*/Ok, Err)) {
      std::fprintf(stderr, "mgc: %s\n", Err.c_str());
      SnapFailed = true;
    } else if (GCO.CrossCheck &&
               !gc::crosscheckSnapshot(Machine, Snap, /*WalkStacks=*/Ok,
                                       Err)) {
      std::fprintf(stderr, "mgc: %s\n", Err.c_str());
      SnapFailed = true;
    } else if (!obs::writeSnapshotFile(SnapPath, Snap, Err)) {
      std::fprintf(stderr, "mgc: %s\n", Err.c_str());
      SnapFailed = true;
    }
  }
  if (Stats) {
    const vm::VMStats &S = Machine.Stats;
    std::printf("dispatch: %s\n",
                vm::dispatchTierName(Machine.activeDispatch()));
    std::printf("run: %llu instrs, %llu collections, %llu bytes copied, "
                "%llu frames traced, %llu derived adjusted\n",
                static_cast<unsigned long long>(S.Instrs),
                static_cast<unsigned long long>(S.Collections),
                static_cast<unsigned long long>(S.BytesCopied),
                static_cast<unsigned long long>(S.FramesTraced),
                static_cast<unsigned long long>(S.DerivedAdjusted));
    if (VO.GenGc)
      std::printf("gen-gc: %llu minor / %llu full collections, %llu barriers "
                  "run, %llu remset records (peak %llu), %llu objects "
                  "promoted (%llu bytes)\n",
                  static_cast<unsigned long long>(S.MinorCollections),
                  static_cast<unsigned long long>(S.Collections -
                                                  S.MinorCollections),
                  static_cast<unsigned long long>(S.WriteBarriersRun),
                  static_cast<unsigned long long>(S.RemSetRecords),
                  static_cast<unsigned long long>(S.RemSetPeak),
                  static_cast<unsigned long long>(
                      Machine.TheHeap.ObjectsPromoted),
                  static_cast<unsigned long long>(
                      Machine.TheHeap.BytesPromoted));
    if (VO.HeapGrowthPct || VO.NurseryAuto)
      std::printf("heap-policy: %llu growths to %llu bytes, %llu nursery "
                  "resizes (half now %llu bytes)\n",
                  static_cast<unsigned long long>(Machine.TheHeap.HeapGrowths),
                  static_cast<unsigned long long>(
                      Machine.TheHeap.capacityBytes()),
                  static_cast<unsigned long long>(
                      Machine.TheHeap.NurseryResizes),
                  static_cast<unsigned long long>(
                      VO.GenGc ? Machine.TheHeap.nurseryCapacityBytes() : 0));
    if (S.Requests)
      std::printf("requests: %llu completed\n",
                  static_cast<unsigned long long>(S.Requests));
    if (Leak.Enabled && Tracer) {
      std::vector<obs::Tracer::LeakFlag> Flags = Tracer->leakFlags();
      std::printf("leak-detect: %zu site(s) flagged (%llu samples over %llu "
                  "collections, window %u)\n",
                  Flags.size(),
                  static_cast<unsigned long long>(Tracer->leakSamples()),
                  static_cast<unsigned long long>(Tracer->leakScans()),
                  Tracer->config().Leak.Window);
      for (const obs::Tracer::LeakFlag &F : Flags) {
        const gcmaps::AllocSite &Site = Prog.SiteTab.Sites[F.Site];
        std::printf("  site %u (%s:%u) slope %+lld B/gc, live %llu B, "
                    "first flagged at gc %llu\n",
                    F.Site,
                    Site.Func < Prog.Funcs.size()
                        ? Prog.Funcs[Site.Func].Name.c_str()
                        : "?",
                    Site.Line, static_cast<long long>(F.SlopeBytes),
                    static_cast<unsigned long long>(F.LiveBytes),
                    static_cast<unsigned long long>(F.FirstFlagged));
      }
    }
    if (GCO.UseMapIndex && (S.DecodeCacheHits || S.DecodeCacheMisses))
      std::printf("decode: %llu cache hits, %llu misses (%.1f%% hit), "
                  "%llu blob bytes skipped by index\n",
                  static_cast<unsigned long long>(S.DecodeCacheHits),
                  static_cast<unsigned long long>(S.DecodeCacheMisses),
                  100.0 * static_cast<double>(S.DecodeCacheHits) /
                      static_cast<double>(S.DecodeCacheHits +
                                          S.DecodeCacheMisses),
                  static_cast<unsigned long long>(S.DecodeBytesSkipped));
    if (Prof)
      std::printf("profile: %llu samples / %llu instrs sampled (interval "
                  "%llu), %llu allocs attributed, %llu walk errors, "
                  "%llu point-decode hits / %llu misses\n",
                  static_cast<unsigned long long>(Profile.Samples),
                  static_cast<unsigned long long>(Profile.SampleWeight),
                  static_cast<unsigned long long>(Profile.IntervalInstrs),
                  static_cast<unsigned long long>(Profile.Allocs),
                  static_cast<unsigned long long>(Profile.WalkErrors),
                  static_cast<unsigned long long>(Prof->decodeHits()),
                  static_cast<unsigned long long>(Prof->decodeMisses()));
  }

  if (StatsJsonPath) {
    const vm::VMStats &S = Machine.Stats;
    std::string J = "{";
    J += "\"program\":";
    obs::appendJsonString(J, Prog.Name);
    J += ",\"exit\":";
    obs::appendJsonString(J, Ok ? "ok" : "error");
    if (!Ok) {
      J += ",\"error\":";
      obs::appendJsonString(J, Machine.Error);
    }
    J += ",\"dispatch\":";
    obs::appendJsonString(J, vm::dispatchTierName(Machine.activeDispatch()));
    jsonField(J, "gen_gc", VO.GenGc ? 1 : 0);
    jsonField(J, "code_bytes", Prog.codeSizeBytes());
    jsonField(J, "table_bytes_delta_pp", Prog.Sizes.DeltaPP);
    jsonField(J, "pc_map_bytes", Prog.Sizes.PcMapBytes);
    jsonField(J, "site_table_bytes", Prog.Sizes.SiteTableBytes);
    jsonField(J, "sites", Prog.SiteTab.Sites.size());
    jsonField(J, "instrs", S.Instrs);
    jsonField(J, "collections", S.Collections);
    jsonField(J, "minor_collections", S.MinorCollections);
    jsonField(J, "frames_traced", S.FramesTraced);
    jsonField(J, "roots_traced", S.RootsTraced);
    jsonField(J, "objects_copied", S.ObjectsCopied);
    jsonField(J, "bytes_copied", S.BytesCopied);
    jsonField(J, "objects_promoted", Machine.TheHeap.ObjectsPromoted);
    jsonField(J, "bytes_promoted", Machine.TheHeap.BytesPromoted);
    jsonField(J, "derived_adjusted", S.DerivedAdjusted);
    jsonField(J, "write_barriers_run", S.WriteBarriersRun);
    jsonField(J, "remset_records", S.RemSetRecords);
    jsonField(J, "remset_peak", S.RemSetPeak);
    jsonField(J, "decode_cache_hits", S.DecodeCacheHits);
    jsonField(J, "decode_cache_misses", S.DecodeCacheMisses);
    jsonField(J, "decode_bytes_skipped", S.DecodeBytesSkipped);
    jsonField(J, "rendezvous_steps", S.RendezvousSteps);
    jsonField(J, "req_completed", S.Requests);
    jsonField(J, "heap_growths", Machine.TheHeap.HeapGrowths);
    jsonField(J, "nursery_resizes", Machine.TheHeap.NurseryResizes);
    jsonField(J, "heap_capacity_bytes", Machine.TheHeap.capacityBytes());
    jsonField(J, "gc_ns", S.GcNanos);
    jsonField(J, "minor_gc_ns", S.MinorGcNanos);
    jsonField(J, "stack_trace_ns", S.StackTraceNanos);
    J += ',';
    J += Tracer->summaryJsonFields();
    J += ',';
    J += Tracer->liveJsonFields(Machine.TheHeap);
    if (Leak.Enabled) {
      J += ',';
      J += Tracer->leakJsonFields();
    }
    if (Prof) {
      jsonField(J, "prof_samples", Profile.Samples);
      jsonField(J, "prof_sample_weight", Profile.SampleWeight);
      jsonField(J, "prof_interval", Profile.IntervalInstrs);
      jsonField(J, "prof_allocs", Profile.Allocs);
      jsonField(J, "prof_alloc_bytes", Profile.AllocBytes);
      jsonField(J, "prof_stacks", Profile.Stacks.size());
      jsonField(J, "prof_frames_sampled", Profile.FramesSampled);
      jsonField(J, "prof_frames_unmapped", Profile.FramesUnmapped);
      jsonField(J, "prof_walk_errors", Profile.WalkErrors);
    }
    J += ",\"provenance\":";
    J += support::provenanceJson();
    J += "}\n";
    std::ofstream JOut(StatsJsonPath);
    if (!JOut) {
      std::fprintf(stderr, "mgc: cannot open stats file %s\n", StatsJsonPath);
      return 1;
    }
    JOut << J;
  }
  if (SnapFailed || ProfFailed)
    return 1;
  return Ok ? 0 : 1;
}
