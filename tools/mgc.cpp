//===- tools/mgc.cpp - The mgc command-line driver -------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile and run MG programs from the command line.
///
///   mgc [options] file.mg
///
///   --noopt          compile at -O0
///   --no-gc-tables   omit gc tables (the program cannot collect)
///   --cisc           enable the VAX-style addressing fold
///   --threads        insert loop polls for threaded collection (§5.3)
///   --interproc      elide gc-points at calls to non-allocating procs
///   --split          path-splitting instead of path variables (§4)
///   --dump-ir        print the optimized IR and exit
///   --dump-asm       print machine code with decoded tables and exit
///   --stats          print compilation and collection statistics
///   --stress         collect before every allocation
///   --heap BYTES     semispace size (default 4 MiB)
///   --gen-gc         generational mode: nursery + write barriers +
///                    remembered-set minor collections
///   --nursery-bytes BYTES
///                    size of each nursery half (default heap/8)
///   --no-map-index   decode tables with the reference walk-from-start
///                    decoder (the §6.3 artifact) instead of the load-time
///                    index + decoded-point cache
///   --gc-crosscheck  verify every accelerated decode against the
///                    reference decoder (aborts on mismatch)
///   --no-run         compile only
///
//===----------------------------------------------------------------------===//

#include "codegen/Disasm.h"
#include "driver/Compiler.h"
#include "gc/Collector.h"
#include "vm/VM.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace mgc;

namespace {
int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--noopt] [--no-gc-tables] [--cisc] [--threads] "
               "[--interproc]\n           [--split] [--dump-ir] [--dump-asm] "
               "[--stats] [--stress]\n           [--heap BYTES] [--gen-gc] "
               "[--nursery-bytes BYTES]\n           [--no-map-index] "
               "[--gc-crosscheck] [--no-run] [--spawn PROC] file.mg\n",
               Argv0);
  return 2;
}
} // namespace

int main(int argc, char **argv) {
  driver::CompilerOptions Options;
  vm::VMOptions VO;
  gc::CollectorOptions GCO;
  bool DumpIR = false, DumpAsm = false, Stats = false, Run = true;
  const char *Path = nullptr;
  const char *SpawnName = nullptr;

  for (int A = 1; A < argc; ++A) {
    const char *Arg = argv[A];
    if (!std::strcmp(Arg, "--noopt")) {
      Options.OptLevel = 0;
    } else if (!std::strcmp(Arg, "--no-gc-tables")) {
      Options.GcTables = false;
    } else if (!std::strcmp(Arg, "--cisc")) {
      Options.CiscFold = true;
    } else if (!std::strcmp(Arg, "--threads")) {
      Options.ThreadedPolls = true;
    } else if (!std::strcmp(Arg, "--interproc")) {
      Options.InterprocGcPoints = true;
    } else if (!std::strcmp(Arg, "--split")) {
      Options.Mode = driver::Disambiguation::PathSplitting;
    } else if (!std::strcmp(Arg, "--dump-ir")) {
      DumpIR = true;
    } else if (!std::strcmp(Arg, "--dump-asm")) {
      DumpAsm = true;
    } else if (!std::strcmp(Arg, "--stats")) {
      Stats = true;
    } else if (!std::strcmp(Arg, "--stress")) {
      VO.GcStress = true;
    } else if (!std::strcmp(Arg, "--no-map-index")) {
      GCO.UseMapIndex = false;
    } else if (!std::strcmp(Arg, "--gc-crosscheck")) {
      GCO.CrossCheck = true;
    } else if (!std::strcmp(Arg, "--no-run")) {
      Run = false;
    } else if (!std::strcmp(Arg, "--heap")) {
      if (++A == argc)
        return usage(argv[0]);
      VO.HeapBytes = static_cast<size_t>(std::atoll(argv[A]));
    } else if (!std::strcmp(Arg, "--gen-gc")) {
      Options.WriteBarriers = true;
      VO.GenGc = true;
    } else if (!std::strcmp(Arg, "--nursery-bytes")) {
      if (++A == argc)
        return usage(argv[0]);
      VO.NurseryBytes = static_cast<size_t>(std::atoll(argv[A]));
    } else if (!std::strcmp(Arg, "--spawn")) {
      if (++A == argc)
        return usage(argv[0]);
      SpawnName = argv[A];
    } else if (Arg[0] == '-') {
      return usage(argv[0]);
    } else {
      Path = Arg;
    }
  }
  if (!Path)
    return usage(argv[0]);

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "mgc: cannot open %s\n", Path);
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  driver::CompileResult Compiled = driver::compile(Buf.str(), Options);
  if (!Compiled.Prog) {
    std::fprintf(stderr, "%s", Compiled.Diags.str().c_str());
    return 1;
  }
  vm::Program &Prog = *Compiled.Prog;

  if (DumpIR) {
    std::fputs(Compiled.IRDump.c_str(), stdout);
    return 0;
  }
  if (DumpAsm) {
    for (unsigned F = 0; F != Prog.Funcs.size(); ++F)
      std::fputs(
          codegen::disassembleFunction(Prog, F, Options.GcTables).c_str(),
          stdout);
    return 0;
  }

  if (Stats) {
    std::printf("code: %zu bytes, %zu functions, %u gc-points (%u elided), "
                "%u loop polls\n",
                Prog.codeSizeBytes(), Prog.Funcs.size(), Prog.Stats.NGC,
                Prog.GcPointsElided, Prog.LoopPolls);
    std::printf("tables: delta-main pp %zuB (plain %zuB), full-info packed "
                "%zuB, pc-map %zuB\n",
                Prog.Sizes.DeltaPP, Prog.Sizes.DeltaPlain,
                Prog.Sizes.FullPack, Prog.Sizes.PcMapBytes);
    if (Prog.PathVars)
      std::printf("path variables: %u (%u assignments)\n", Prog.PathVars,
                  Prog.PathAssigns);
    if (Options.WriteBarriers)
      std::printf("write barriers: %u emitted\n", Prog.WriteBarriersEmitted);
    if (Options.CiscFold)
      std::printf("addressing folds: %u applied, %u preserved for gc\n",
                  Prog.CiscFoldsApplied, Prog.CiscFoldsBlocked);
  }
  if (!Run)
    return 0;

  vm::VM Machine(Prog, VO);
  gc::installPreciseCollector(Machine, GCO);
  if (SpawnName) {
    int Idx = -1;
    for (unsigned F = 0; F != Prog.Funcs.size(); ++F)
      if (Prog.Funcs[F].Name == SpawnName)
        Idx = static_cast<int>(F);
    if (Idx < 0) {
      std::fprintf(stderr, "mgc: --spawn: no procedure named %s\n",
                   SpawnName);
      return 1;
    }
    Machine.spawnThread(static_cast<unsigned>(Idx));
  }
  bool Ok = Machine.run();
  std::fputs(Machine.Out.c_str(), stdout);
  if (!Ok) {
    std::fprintf(stderr, "mgc: runtime error: %s\n", Machine.Error.c_str());
    return 1;
  }
  if (Stats) {
    const vm::VMStats &S = Machine.Stats;
    std::printf("run: %llu instrs, %llu collections, %llu bytes copied, "
                "%llu frames traced, %llu derived adjusted\n",
                static_cast<unsigned long long>(S.Instrs),
                static_cast<unsigned long long>(S.Collections),
                static_cast<unsigned long long>(S.BytesCopied),
                static_cast<unsigned long long>(S.FramesTraced),
                static_cast<unsigned long long>(S.DerivedAdjusted));
    if (VO.GenGc)
      std::printf("gen-gc: %llu minor / %llu full collections, %llu barriers "
                  "run, %llu remset records (peak %llu), %llu objects "
                  "promoted (%llu bytes)\n",
                  static_cast<unsigned long long>(S.MinorCollections),
                  static_cast<unsigned long long>(S.Collections -
                                                  S.MinorCollections),
                  static_cast<unsigned long long>(S.WriteBarriersRun),
                  static_cast<unsigned long long>(S.RemSetRecords),
                  static_cast<unsigned long long>(S.RemSetPeak),
                  static_cast<unsigned long long>(
                      Machine.TheHeap.ObjectsPromoted),
                  static_cast<unsigned long long>(
                      Machine.TheHeap.BytesPromoted));
    if (GCO.UseMapIndex && (S.DecodeCacheHits || S.DecodeCacheMisses))
      std::printf("decode: %llu cache hits, %llu misses (%.1f%% hit), "
                  "%llu blob bytes skipped by index\n",
                  static_cast<unsigned long long>(S.DecodeCacheHits),
                  static_cast<unsigned long long>(S.DecodeCacheMisses),
                  100.0 * static_cast<double>(S.DecodeCacheHits) /
                      static_cast<double>(S.DecodeCacheHits +
                                          S.DecodeCacheMisses),
                  static_cast<unsigned long long>(S.DecodeBytesSkipped));
  }
  return 0;
}
