//===- tools/mgc-heapsnap.cpp - Heap snapshot analyzer ---------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analyze heap snapshots written by `mgc --heap-snapshot`.
///
///   mgc-heapsnap [--top N] file.snap
///       Full analysis: totals, dominator-based retained sizes, top-N by
///       shallow/retained bytes grouped by allocation site and by type,
///       age histogram.
///
///   mgc-heapsnap --path-to NODE file.snap
///       Shortest root path to a node id (ids as printed by the analysis).
///
///   mgc-heapsnap --diff old.snap new.snap [--top N]
///       Per-site growth between two snapshots of the same program.
///
//===----------------------------------------------------------------------===//

#include "obs/HeapSnapshot.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace mgc;

namespace {
int usage() {
  std::fprintf(stderr,
               "usage: mgc-heapsnap [--top N] file.snap\n"
               "       mgc-heapsnap --path-to NODE file.snap\n"
               "       mgc-heapsnap --diff old.snap new.snap [--top N]\n");
  return 2;
}

bool load(const char *Path, obs::HeapSnapshot &S) {
  std::string Err;
  if (!obs::readSnapshotFile(Path, S, Err)) {
    std::fprintf(stderr, "mgc-heapsnap: %s: %s\n", Path, Err.c_str());
    return false;
  }
  return true;
}
} // namespace

int main(int argc, char **argv) {
  size_t TopN = 10;
  bool Diff = false;
  bool HavePath = false;
  unsigned long long PathNode = 0;
  std::vector<const char *> Files;

  for (int A = 1; A < argc; ++A) {
    const char *Arg = argv[A];
    if (!std::strcmp(Arg, "--top")) {
      if (++A == argc)
        return usage();
      TopN = static_cast<size_t>(std::atoll(argv[A]));
    } else if (!std::strcmp(Arg, "--diff")) {
      Diff = true;
    } else if (!std::strcmp(Arg, "--path-to")) {
      if (++A == argc)
        return usage();
      HavePath = true;
      PathNode = static_cast<unsigned long long>(std::atoll(argv[A]));
    } else if (Arg[0] == '-') {
      return usage();
    } else {
      Files.push_back(Arg);
    }
  }

  if (Diff) {
    if (Files.size() != 2 || HavePath)
      return usage();
    obs::HeapSnapshot Old, New;
    if (!load(Files[0], Old) || !load(Files[1], New))
      return 1;
    std::fputs(obs::diffSnapshots(Old, New, TopN).c_str(), stdout);
    return 0;
  }

  if (Files.size() != 1)
    return usage();
  obs::HeapSnapshot S;
  if (!load(Files[0], S))
    return 1;
  if (HavePath) {
    std::fputs(
        obs::renderPathTo(S, static_cast<uint32_t>(PathNode)).c_str(),
        stdout);
    return 0;
  }
  std::fputs(obs::renderSnapshot(S, TopN).c_str(), stdout);
  return 0;
}
