//===- tools/mgc-heapsnap.cpp - Heap snapshot analyzer ---------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analyze heap snapshots written by `mgc --heap-snapshot`.
///
///   mgc-heapsnap [--top N] file.snap
///       Full analysis: totals, dominator-based retained sizes, top-N by
///       shallow/retained bytes grouped by allocation site and by type,
///       age histogram.
///
///   mgc-heapsnap --path-to NODE file.snap
///       All retaining paths to a node id (ids as printed by the
///       analysis), ranked by the retained bytes of each path's root.
///
///   mgc-heapsnap --diff old.snap new.snap [--top N]
///       Per-site growth between two snapshots of the same program.
///
///   mgc-heapsnap --watch base.snap [--top N]
///   mgc-heapsnap --watch s1.snap s2.snap ... [--top N]
///       Continuous watch over a `--snapshot-every N` stream: with one
///       argument, auto-discovers base.snap.1, base.snap.2, ... plus the
///       at-exit base.snap; with several, uses them in the given order.
///       Reports per-snapshot crosschecked totals, incremental and
///       cumulative per-site growth, and retaining-path churn.  Exits
///       non-zero if any snapshot fails its internal crosscheck.
///
/// Any truncated or corrupt snapshot file is a one-line diagnostic and a
/// non-zero exit — never a partial report.
///
//===----------------------------------------------------------------------===//

#include "obs/HeapSnapshot.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace mgc;

namespace {
int usage() {
  std::fprintf(stderr,
               "usage: mgc-heapsnap [--top N] file.snap\n"
               "       mgc-heapsnap --path-to NODE file.snap\n"
               "       mgc-heapsnap --diff old.snap new.snap [--top N]\n"
               "       mgc-heapsnap --watch base.snap [--top N]\n"
               "       mgc-heapsnap --watch s1.snap s2.snap ... [--top N]\n");
  return 2;
}

bool load(const char *Path, obs::HeapSnapshot &S) {
  std::string Err;
  if (!obs::readSnapshotFile(Path, S, Err)) {
    std::fprintf(stderr, "mgc-heapsnap: %s: %s\n", Path, Err.c_str());
    return false;
  }
  return true;
}
} // namespace

int main(int argc, char **argv) {
  size_t TopN = 10;
  bool Diff = false;
  bool Watch = false;
  bool HavePath = false;
  unsigned long long PathNode = 0;
  std::vector<const char *> Files;

  for (int A = 1; A < argc; ++A) {
    const char *Arg = argv[A];
    if (!std::strcmp(Arg, "--top")) {
      if (++A == argc)
        return usage();
      TopN = static_cast<size_t>(std::atoll(argv[A]));
    } else if (!std::strcmp(Arg, "--diff")) {
      Diff = true;
    } else if (!std::strcmp(Arg, "--watch")) {
      Watch = true;
    } else if (!std::strcmp(Arg, "--path-to")) {
      if (++A == argc)
        return usage();
      HavePath = true;
      PathNode = static_cast<unsigned long long>(std::atoll(argv[A]));
    } else if (Arg[0] == '-') {
      return usage();
    } else {
      Files.push_back(Arg);
    }
  }

  if (Watch) {
    if (Files.empty() || HavePath || Diff)
      return usage();
    std::vector<obs::HeapSnapshot> Stream;
    if (Files.size() == 1) {
      // A --snapshot-every stream: base.1, base.2, ... in collection
      // order, then the at-exit snapshot at the base path itself.
      for (unsigned long long Seq = 1;; ++Seq) {
        std::string Part = std::string(Files[0]) + "." + std::to_string(Seq);
        std::FILE *Probe = std::fopen(Part.c_str(), "rb");
        if (!Probe)
          break;
        std::fclose(Probe);
        Stream.emplace_back();
        if (!load(Part.c_str(), Stream.back()))
          return 1;
      }
      Stream.emplace_back();
      if (!load(Files[0], Stream.back()))
        return 1;
    } else {
      for (const char *F : Files) {
        Stream.emplace_back();
        if (!load(F, Stream.back()))
          return 1;
      }
    }
    bool CrosscheckOk = false;
    std::string Out = obs::watchSnapshots(Stream, TopN, CrosscheckOk);
    std::fputs(Out.c_str(), stdout);
    if (!CrosscheckOk) {
      std::fprintf(stderr, "mgc-heapsnap: watch crosscheck FAILED\n");
      return 1;
    }
    return 0;
  }

  if (Diff) {
    if (Files.size() != 2 || HavePath)
      return usage();
    obs::HeapSnapshot Old, New;
    if (!load(Files[0], Old) || !load(Files[1], New))
      return 1;
    if (Old.ToolVersion != New.ToolVersion ||
        Old.BuildFlags != New.BuildFlags)
      std::fprintf(stderr,
                   "mgc-heapsnap: warning: snapshots come from different "
                   "builds (%s / %s vs %s / %s)\n",
                   Old.ToolVersion.c_str(), Old.BuildFlags.c_str(),
                   New.ToolVersion.c_str(), New.BuildFlags.c_str());
    std::fputs(obs::diffSnapshots(Old, New, TopN).c_str(), stdout);
    return 0;
  }

  if (Files.size() != 1)
    return usage();
  obs::HeapSnapshot S;
  if (!load(Files[0], S))
    return 1;
  if (HavePath) {
    std::fputs(
        obs::renderPathTo(S, static_cast<uint32_t>(PathNode)).c_str(),
        stdout);
    return 0;
  }
  std::fputs(obs::renderSnapshot(S, TopN).c_str(), stdout);
  return 0;
}
