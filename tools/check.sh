#!/usr/bin/env bash
#===- tools/check.sh - tier-1 verify + decode perf trajectory -------------===#
#
# Part of the mgc project (PLDI 1992 gc-tables reproduction).
#
# Runs the tier-1 verify line (configure, build, ctest) twice — once in the
# default two-space configuration and once with MGC_TEST_GEN_GC=1, which
# re-runs every gc-tables test through generational mode (nursery + write
# barriers + minor collections) with the remembered-set cross-check on —
# then the decode microbenchmarks (BENCH_decode.json), the generational
# pause benchmarks (BENCH_gengc.json), and the observability overhead gate
# (BENCH_trace.json), and the heap-snapshot cost gate (BENCH_snapshot.json)
# so successive PRs leave a perf trajectory.  The gengc binary exits
# non-zero on any cross-check or output divergence between the two modes;
# trace_overhead exits non-zero when the tracer costs the mutator more
# than the issue gates allow; snapshot_overhead exits non-zero when
# attribution maintenance exceeds 2% of collection time or a capture
# costs more than one full-collection pause; the dispatch gate
# (BENCH_dispatch.json) exits non-zero when the threaded tier's mutator
# speedup over the switch interpreter drops below 1.5x or the tiers
# diverge; the bounded-pause gate (BENCH_pause.json) exits non-zero when
# the parallel collector diverges from the serial one or (on >= 4-core
# hosts) when 4 workers fail to cut the max pause 1.5x; the server gate
# (BENCH_server.json) exits non-zero when the request harness loses
# virtual-time determinism, GC-pause attribution, or cross-policy output
# identity; the leak gate (BENCH_leak.json) exits non-zero when the
# online growth detector costs more than its overhead gates (1% off, 3%
# on), misses the injected leak within its window bound, flags the
# leak-free §6 suite, or loses flag determinism across threads/tiers;
# the profiler gate (BENCH_prof.json) exits non-zero when the sampling
# profiler costs more than 1% attached-disabled / 5% enabled, when the
# ground-truth workload pins less than 90% of the sampled weight to the
# known hot function, or when the dispatch tiers' profiles diverge;
# and the gc-, server-, leak-, and prof-labeled suites are additionally
# built and run under ThreadSanitizer.  Snapshots are then captured
# (cross-checked against an independent precise re-trace) and analyzed
# for the four §6 benchmark programs and the frozen corpus in both
# collector modes.
#
#   tools/check.sh [--skip-tests]
#
#===------------------------------------------------------------------------===#
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"

SKIP_TESTS=0
for Arg in "$@"; do
  case "$Arg" in
    --skip-tests) SKIP_TESTS=1 ;;
    *) echo "usage: tools/check.sh [--skip-tests]" >&2; exit 2 ;;
  esac
done

# --- Tier-1 verify -------------------------------------------------------
cmake -B build -S .
cmake --build build -j
if [ "$SKIP_TESTS" -eq 0 ]; then
  (cd build && ctest --output-on-failure -j)
  # Second pass: the same suite through the generational collector (write
  # barriers + nursery + minor collections + remembered-set cross-check).
  # Outputs and assertions must not change.
  (cd build && MGC_TEST_GEN_GC=1 ctest --output-on-failure -j)
fi

# --- Decode perf trajectory ---------------------------------------------
# Short min_time: this is a trajectory marker, not a publication run.
# (Older google-benchmark releases reject the "0.05x" repetition syntax,
# so pass plain seconds.)
MIN_TIME="${BENCH_MIN_TIME:-0.05}"
./build/bench/micro_decode \
  --benchmark_filter='BM_Decode|BM_BuildMapIndex|BM_FullCollection' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out="$ROOT/BENCH_decode.json" \
  --benchmark_out_format=json \
  --benchmark_format=console

# --- Generational pause trajectory --------------------------------------
# verifyModes() inside the binary runs every workload in both modes with
# cross-checks on and exits non-zero on divergence, failing this script.
./build/bench/gengc \
  --benchmark_out="$ROOT/BENCH_gengc.json" \
  --benchmark_out_format=json \
  --benchmark_format=console

# --- Observability overhead gate -----------------------------------------
# Runs the gengc workloads with the tracer absent / attached-disabled /
# enabled and exits non-zero when the generational-mode overhead exceeds
# the issue gates (1% disabled, 3% enabled), failing this script.  Also
# records pause p50/p95 per collector mode.  MGC_TRACE_RUNS tunes the
# timing repetitions.
(cd "$ROOT" && ./build/bench/trace_overhead)

# --- Heap snapshot gate + capture/analysis sweep -------------------------
# snapshot_overhead gates attribution maintenance (<= 2% of collection
# time; it is header-borne, so the measured delta is ~0) and capture cost
# (<= one full-collection pause) on the gengc workloads, cross-checks the
# at-exit snapshots of the four §6 benchmark programs, writes them to
# $SNAPDIR for analysis, and emits BENCH_snapshot.json.
SNAPDIR="$ROOT/build/snapshots"
mkdir -p "$SNAPDIR"
(cd "$ROOT" && MGC_SNAP_DIR="$SNAPDIR" ./build/bench/snapshot_overhead)
for Snap in "$SNAPDIR"/*.snap; do
  ./build/tools/mgc-heapsnap --top 5 "$Snap" > /dev/null
done

# The frozen corpus through the CLI pipeline, two-space and generational:
# capture an at-exit snapshot with the capture-vs-recount-vs-conservative
# cross-check on, analyze it, and diff the two modes' snapshots (same
# program, so per-site growth is well-defined; exercises mgc-heapsnap
# --diff end to end).
for Mg in "$ROOT"/tests/corpus/*.mg; do
  Base="$SNAPDIR/$(basename "$Mg" .mg)"
  ./build/tools/mgc --gc-crosscheck --heap-snapshot "$Base.snap" \
      "$Mg" > /dev/null
  ./build/tools/mgc --gen-gc --gc-crosscheck \
      --heap-snapshot "$Base.gen.snap" "$Mg" > /dev/null
  ./build/tools/mgc-heapsnap --top 5 "$Base.snap" > /dev/null
  ./build/tools/mgc-heapsnap --top 5 "$Base.gen.snap" > /dev/null
  ./build/tools/mgc-heapsnap --diff "$Base.snap" "$Base.gen.snap" \
      > /dev/null
done

# --- Dispatch-tier throughput gate ---------------------------------------
# Runs the §6 benchmarks under both execution tiers (reference switch
# interpreter vs pre-decoded computed-goto), verifies they agree
# bit-identically on output/instructions/collections, and exits non-zero
# when the geometric-mean mutator speedup of threaded over switch drops
# below 1.5x.  Emits BENCH_dispatch.json.  MGC_DISPATCH_RUNS tunes the
# timing repetitions.
(cd "$ROOT" && ./build/bench/dispatch)

# --- Bounded-pause gate ---------------------------------------------------
# Runs the §6 benchmarks plus a high-thread-count spin mix at
# --gc-threads 1/2/4, verifies the parallel collector reproduces every
# deterministic GC observable (and that --gc-threads 1 is bit-identical
# to the default collector), and records pause p50/p99/max plus the MMU
# curve in BENCH_pause.json.  On hosts with >= 4 cores it additionally
# gates a >= 1.5x max-pause improvement at 4 workers on the
# large-live-set workloads; on smaller hosts that gate is reported as
# skipped.  MGC_PAUSE_RUNS tunes the timing repetitions.
(cd "$ROOT" && ./build/bench/pause)

# --- Server-workload gate -------------------------------------------------
# Drives three generated MG server programs (uniform, bursty, spin-mix
# arrivals) to steady state under four heap-sizing policies x both
# dispatch tiers x --gc-threads 1/2/4, verifies virtual-time determinism
# (same seed => identical outputs, service demands, and latency samples
# across every cell), exact GC-pause attribution against the tracer, and
# cross-policy output identity, then records requests/sec, latency
# p50/p99/max, and mutator utilization per cell in BENCH_server.json.
# MGC_SERVER_RUNS tunes the timing repetitions.
(cd "$ROOT" && ./build/bench/server)

# --- Leak-triage gate -----------------------------------------------------
# Measures the online growth detector's mutator cost on the gengc
# workloads (tracer enabled in all three cells: no leak config /
# configured-but-disabled / enabled), then checks detection (an injected
# global-chain leak must be flagged at the Grow site within K = Window
# full collections), false positives (the §6 suite must flag nothing),
# and determinism (flags byte-identical across --gc-threads 1/2/4 and
# both dispatch tiers).  Emits BENCH_leak.json; any failed gate exits
# non-zero.  MGC_LEAK_RUNS tunes the timing repetitions.
(cd "$ROOT" && ./build/bench/leak)

# --- Sampling-profiler gate -----------------------------------------------
# Times the gengc workloads with the profiler absent / attached-disabled /
# enabled (<= 1% / <= 5% over baseline), checks the directed ground-truth
# workload attributes >= 90% of the sampled mutator weight to its hot
# function with zero table-walk errors, and verifies the threaded and
# switch tiers produce byte-identical profile bodies.  Emits
# BENCH_prof.json; MGC_PROF_RUNS tunes the timing repetitions.
(cd "$ROOT" && ./build/bench/prof)

# --- ThreadSanitizer sweep of the parallel collector ----------------------
# The gc- and server-labeled suites drive the work-stealing evacuation,
# the per-thread handshakes at 1/2/4 workers, and the request harness's
# spin-thread mixes; a data race in the claim-then-copy forwarding, the
# scan queues, or request accounting fails this step.  The TSan build
# tree is separate so the main build stays instrumented-free.
if [ "$SKIP_TESTS" -eq 0 ]; then
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -O1 -g"
  cmake --build build-tsan --target mgc_tests -j
  (cd build-tsan && ctest -L gc --output-on-failure -j)
  (cd build-tsan && ctest -L server --output-on-failure -j)
  (cd build-tsan && ctest -L leak --output-on-failure -j)
  (cd build-tsan && ctest -L prof --output-on-failure -j)
fi

# --- Differential fuzz budget --------------------------------------------
# A fixed-seed campaign through the whole mode matrix; exits non-zero on
# any divergence or generator defect.  BENCH_fuzz.json records throughput
# (programs/sec) and feature-coverage fractions as trajectory markers.
FUZZ_COUNT="${FUZZ_COUNT:-200}"
./build/tools/mgc-fuzz --seed 1 --count "$FUZZ_COUNT" \
  --out "$ROOT/fuzz-artifacts" --json "$ROOT/BENCH_fuzz.json"

# --- BENCH_*.json provenance schema check ---------------------------------
# Every benchmark artifact must be valid JSON and self-describe the build
# that produced it: hand-built emitters carry a top-level "provenance"
# object (support/Provenance.h), google-benchmark emitters carry the same
# fields via AddCustomContext in "context".  A PR that breaks an emitter's
# JSON or drops the provenance header fails here, not in a later analysis.
python3 - "$ROOT"/BENCH_*.json <<'PYEOF'
import json, sys
bad = 0
for path in sys.argv[1:]:
    try:
        with open(path) as f:
            doc = json.load(f)
    except Exception as e:
        print(f"schema-check: {path}: invalid JSON: {e}")
        bad = 1
        continue
    prov = doc.get("provenance") or doc.get("context") or {}
    missing = [k for k in ("tool_version", "build_flags") if not prov.get(k)]
    if missing:
        print(f"schema-check: {path}: provenance missing {missing}")
        bad = 1
if bad:
    sys.exit(1)
print(f"schema-check: {len(sys.argv) - 1} BENCH files ok")
PYEOF

echo "check.sh: tier-1 ok (default + gen-gc); trace overhead ok;" \
     "snapshot gate ok; dispatch gate ok; pause gate ok; server gate ok;" \
     "leak gate ok; prof gate ok (+ TSan gc/server/leak/prof slices);" \
     "fuzz ok ($FUZZ_COUNT programs); benchmarks written to" \
     "BENCH_decode.json, BENCH_gengc.json, BENCH_trace.json," \
     "BENCH_snapshot.json, BENCH_dispatch.json, BENCH_pause.json," \
     "BENCH_server.json, BENCH_leak.json, BENCH_prof.json, BENCH_fuzz.json"
