#!/usr/bin/env bash
#===- tools/check.sh - tier-1 verify + decode perf trajectory -------------===#
#
# Part of the mgc project (PLDI 1992 gc-tables reproduction).
#
# Runs the tier-1 verify line (configure, build, ctest) and then the decode
# microbenchmarks, writing indexed-vs-reference ns/op to BENCH_decode.json
# at the repo root so successive PRs leave a perf trajectory.
#
#   tools/check.sh [--skip-tests]
#
#===------------------------------------------------------------------------===#
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"

SKIP_TESTS=0
for Arg in "$@"; do
  case "$Arg" in
    --skip-tests) SKIP_TESTS=1 ;;
    *) echo "usage: tools/check.sh [--skip-tests]" >&2; exit 2 ;;
  esac
done

# --- Tier-1 verify -------------------------------------------------------
cmake -B build -S .
cmake --build build -j
if [ "$SKIP_TESTS" -eq 0 ]; then
  (cd build && ctest --output-on-failure -j)
fi

# --- Decode perf trajectory ---------------------------------------------
# Short min_time: this is a trajectory marker, not a publication run.
# (Older google-benchmark releases reject the "0.05x" repetition syntax,
# so pass plain seconds.)
MIN_TIME="${BENCH_MIN_TIME:-0.05}"
./build/bench/micro_decode \
  --benchmark_filter='BM_Decode|BM_BuildMapIndex|BM_FullCollection' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out="$ROOT/BENCH_decode.json" \
  --benchmark_out_format=json \
  --benchmark_format=console

echo "check.sh: tier-1 ok; decode benchmarks written to BENCH_decode.json"
