//===- tools/mgc-report.cpp - Render a JSONL gc trace ---------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregates a trace produced by `mgc --trace out.jsonl` into
/// human-readable tables: per-phase pause percentiles, copy/promotion
/// volume, decode-cache efficiency, and the top allocation sites by bytes
/// and by first-collection survival.
///
///   mgc-report [--top N] [--json] [--leaks] trace.jsonl
///
///   --json    machine-readable mirror of every rendered section
///   --leaks   print only the suspected-leak table (from the trace's leak
///             records — no snapshot file needed); with --json the full
///             JSON is printed, whose "leaks" array carries the same data
///
/// Exits non-zero on any parse error: the trace format round-trips
/// losslessly or not at all.
///
//===----------------------------------------------------------------------===//

#include "obs/Report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace mgc;

int main(int argc, char **argv) {
  size_t TopN = 10;
  bool Json = false, LeaksOnly = false;
  const char *Path = nullptr;
  for (int A = 1; A < argc; ++A) {
    if (!std::strcmp(argv[A], "--top")) {
      if (++A == argc) {
        std::fprintf(stderr, "mgc-report: --top needs a value\n");
        return 2;
      }
      TopN = static_cast<size_t>(std::atoll(argv[A]));
    } else if (!std::strcmp(argv[A], "--json")) {
      Json = true;
    } else if (!std::strcmp(argv[A], "--leaks")) {
      LeaksOnly = true;
    } else if (argv[A][0] == '-') {
      std::fprintf(stderr, "usage: %s [--top N] [--json] [--leaks] "
                           "trace.jsonl\n",
                   argv[0]);
      return 2;
    } else {
      Path = argv[A];
    }
  }
  if (!Path) {
    std::fprintf(stderr, "usage: %s [--top N] [--json] [--leaks] "
                         "trace.jsonl\n",
                 argv[0]);
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "mgc-report: cannot open %s\n", Path);
    return 1;
  }

  obs::TraceReport Report;
  std::string Err;
  if (!obs::readTrace(In, Report, Err)) {
    std::fprintf(stderr, "mgc-report: %s: %s\n", Path, Err.c_str());
    return 1;
  }
  if (Report.LinesRead == 0) {
    std::fprintf(stderr, "mgc-report: %s: empty trace\n", Path);
    return 1;
  }

  if (Json)
    std::fputs(obs::renderReportJson(Report, TopN).c_str(), stdout);
  else if (LeaksOnly)
    std::fputs(obs::renderLeaks(Report, TopN).c_str(), stdout);
  else
    std::fputs(obs::renderReport(Report, TopN).c_str(), stdout);
  return 0;
}
